/**
 * @file
 * Concurrency tests for ExperimentRunner: parallel run() calls share
 * one baseline simulation per workload, invalidateBaselines() may
 * race with in-flight runs, and the documented stale-baseline footgun
 * of mutating baseConfig() without invalidating behaves as specified.
 *
 * Run these under ThreadSanitizer to verify the locking:
 *   cmake -B build-tsan -DDAS_SANITIZE=thread
 *   cmake --build build-tsan --target concurrency_tests
 *   ctest --test-dir build-tsan -L stress
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sim/experiment.hh"

using namespace dasdram;

namespace
{

SimConfig
tinyConfig()
{
    SimConfig cfg;
    cfg.instructionsPerCore = 60'000;
    return cfg;
}

} // namespace

TEST(ExperimentRunnerConcurrency, ParallelRunsMatchSerialRuns)
{
    // 2 workloads × 3 designs run from 4 threads against one runner...
    const std::vector<std::string> workloads = {"mcf", "omnetpp"};
    const std::vector<DesignKind> designs = {
        DesignKind::Standard, DesignKind::Das, DesignKind::Fs};

    ExperimentRunner shared(tinyConfig());
    std::vector<ExperimentResult> parallel(workloads.size() *
                                           designs.size());
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= parallel.size())
                return;
            const std::string &w = workloads[i / designs.size()];
            DesignKind d = designs[i % designs.size()];
            parallel[i] = shared.run(WorkloadSpec::single(w), d);
        }
    };
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();

    // ...must agree exactly with a fresh single-threaded runner.
    ExperimentRunner serial(tinyConfig());
    for (std::size_t i = 0; i < parallel.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        const std::string &w = workloads[i / designs.size()];
        DesignKind d = designs[i % designs.size()];
        ExperimentResult expect = serial.run(WorkloadSpec::single(w), d);
        ASSERT_EQ(parallel[i].metrics.ipc.size(),
                  expect.metrics.ipc.size());
        EXPECT_EQ(parallel[i].metrics.ipc[0], expect.metrics.ipc[0]);
        EXPECT_EQ(parallel[i].metrics.promotions,
                  expect.metrics.promotions);
        EXPECT_EQ(parallel[i].perfImprovement, expect.perfImprovement);
    }
}

TEST(ExperimentRunnerConcurrency, InvalidateRacesWithRuns)
{
    // Stress the memo: runners keep requesting baselines while another
    // thread repeatedly throws them away. Nothing to assert beyond
    // sane output — the point is that ThreadSanitizer stays quiet and
    // no run ever observes a half-built baseline.
    ExperimentRunner runner(tinyConfig());
    std::atomic<bool> stop{false};

    std::vector<std::thread> pool;
    std::atomic<unsigned> failures{0};
    const std::vector<std::string> workloads = {"mcf", "omnetpp",
                                                "milc"};
    for (int t = 0; t < 3; ++t) {
        pool.emplace_back([&, t]() {
            for (int iter = 0; iter < 3; ++iter) {
                ExperimentResult r = runner.run(
                    WorkloadSpec::single(
                        workloads[static_cast<std::size_t>(t)]),
                    iter % 2 ? DesignKind::Das : DesignKind::Standard);
                if (r.metrics.ipc.empty() || r.metrics.ipc[0] <= 0.0)
                    failures.fetch_add(1);
            }
        });
    }
    std::thread invalidator([&]() {
        while (!stop.load()) {
            runner.invalidateBaselines();
            std::this_thread::yield();
        }
    });
    for (auto &t : pool)
        t.join();
    stop.store(true);
    invalidator.join();
    EXPECT_EQ(failures.load(), 0u);
}

TEST(ExperimentRunnerStaleBaseline, DocumentedFootgunBehaviour)
{
    // The documented contract (experiment.hh): mutating baseConfig()
    // without invalidateBaselines() keeps serving the previously
    // cached baseline. This test pins that behaviour down so a future
    // change to the caching policy is a conscious one.
    ExperimentRunner runner(tinyConfig());
    WorkloadSpec w = WorkloadSpec::single("omnetpp");

    ExperimentResult first = runner.run(w, DesignKind::Standard);
    InstCount first_insts = first.metrics.instructions;

    // Double the instruction budget WITHOUT invalidating: the cached
    // (shorter) baseline is still served.
    runner.baseConfig().instructionsPerCore *= 2;
    ExperimentResult stale = runner.run(w, DesignKind::Standard);
    EXPECT_EQ(stale.metrics.instructions, first_insts)
        << "baseline memo should still serve the pre-mutation run";

    // After invalidation the new budget takes effect.
    runner.invalidateBaselines();
    ExperimentResult fresh = runner.run(w, DesignKind::Standard);
    EXPECT_GT(fresh.metrics.instructions, first_insts);
}
