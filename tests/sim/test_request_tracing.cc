/**
 * @file
 * Integration tests for request-lifecycle tracing: span-JSONL dumps
 * must be byte-identical across engines and channel-thread counts,
 * tracing must be observation-only (identical metrics and command
 * streams with sampling on or off), and the critical-path breakdown
 * must reconcile exactly with the aggregate latency histograms.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "mem/request_trace.hh"
#include "sim/system.hh"
#include "workload/spec_profiles.hh"
#include "workload/synth_trace.hh"

using namespace dasdram;

namespace
{

SimConfig
tracedConfig(double rate, InstCount instructions = 120'000)
{
    SimConfig cfg;
    cfg.design = DesignKind::Das;
    cfg.instructionsPerCore = instructions;
    cfg.warmupFraction = 0.2;
    cfg.obs.workloadName = "tiny";
    cfg.obs.traceRequests = rate;
    return cfg;
}

BenchmarkProfile
tinyProfile()
{
    BenchmarkProfile p = specProfile("omnetpp");
    p.footprintMiB = 64;
    p.workingSetPages = 400;
    p.phaseInstructions = 40'000;
    return p;
}

/** One full run: span JSONL, command trace and metrics. */
struct RunResult
{
    std::string spans;
    std::string commands;
    std::string stats;
    RunMetrics metrics;
};

RunResult
runOnce(SimConfig cfg)
{
    SyntheticTrace trace(tinyProfile(), 1);
    System sys(cfg, {&trace});
    std::ostringstream spans_os, cmd_os, stats_os;
    if (cfg.obs.traceRequests > 0.0)
        sys.attachRequestSpanTrace(spans_os);
    sys.attachCommandTrace(cmd_os);
    RunResult r;
    r.metrics = sys.run();
    sys.writeStatsJsonl(stats_os);
    r.spans = spans_os.str();
    r.commands = cmd_os.str();
    r.stats = stats_os.str();
    return r;
}

double
num(const JsonValue &v, const char *key, double fallback = 0.0)
{
    const JsonValue *f = v.find(key);
    return f && f->isNumber() ? f->number : fallback;
}

std::string
str(const JsonValue &v, const char *key)
{
    const JsonValue *f = v.find(key);
    return f && f->isString() ? f->string : std::string();
}

/** Parse a JSONL string into one JsonValue per line. */
std::vector<JsonValue>
parseLines(const std::string &text)
{
    std::vector<JsonValue> out;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        JsonValue v;
        std::string err;
        EXPECT_TRUE(parseJson(line, v, &err)) << line << ": " << err;
        out.push_back(std::move(v));
    }
    return out;
}

} // namespace

TEST(RequestTracing, SpanJsonlIdenticalAcrossEnginesAndThreads)
{
    SimConfig base = tracedConfig(/*rate=*/0.5);
    RunResult ref;
    {
        SimConfig cfg = base;
        cfg.engine = SimEngine::Tick;
        cfg.channelThreads = 1;
        ref = runOnce(cfg);
    }
    EXPECT_FALSE(ref.spans.empty());

    for (SimEngine engine : {SimEngine::Tick, SimEngine::Event}) {
        for (unsigned threads : {1u, 2u, 4u}) {
            if (engine == SimEngine::Tick && threads == 1)
                continue;
            SimConfig cfg = base;
            cfg.engine = engine;
            cfg.channelThreads = threads;
            RunResult r = runOnce(cfg);
            // Byte-identical span JSONL: same requests sampled, same
            // stage cycles, same completion (= emission) order.
            EXPECT_EQ(ref.spans, r.spans)
                << toString(engine) << "/threads=" << threads;
            EXPECT_EQ(ref.commands, r.commands)
                << toString(engine) << "/threads=" << threads;
        }
    }
}

TEST(RequestTracing, TracingIsObservationOnly)
{
    RunResult off = runOnce(tracedConfig(/*rate=*/0.0));
    RunResult on = runOnce(tracedConfig(/*rate=*/1.0));

    // The command stream and every end-of-run metric must not notice
    // the tracer: identical requests, identical cycles.
    EXPECT_TRUE(off.spans.empty());
    EXPECT_FALSE(on.spans.empty());
    EXPECT_EQ(off.commands, on.commands);
    EXPECT_EQ(off.metrics.ipc, on.metrics.ipc);
    EXPECT_EQ(off.metrics.cpuCycles, on.metrics.cpuCycles);
    EXPECT_EQ(off.metrics.instructions, on.metrics.instructions);
    EXPECT_EQ(off.metrics.llcMisses, on.metrics.llcMisses);
    EXPECT_EQ(off.metrics.promotions, on.metrics.promotions);
    EXPECT_EQ(off.metrics.memAccesses, on.metrics.memAccesses);
}

TEST(RequestTracing, BreakdownReconcilesWithLatencyHistograms)
{
    // Rate 1.0 + no warm-up reset: every controller read is spanned,
    // so the aggregator's row-class groups must reconcile with the
    // cross-channel rollup histogram exactly (the span total IS the
    // histogram sample), within one cycle per request of slack.
    SimConfig cfg = tracedConfig(/*rate=*/1.0);
    cfg.warmupFraction = 0.0;
    RunResult r = runOnce(cfg);

    std::map<std::string, JsonValue> recs;
    for (JsonValue &v : parseLines(r.stats)) {
        if (str(v, "type") == "hist" || str(v, "type") == "dist")
            recs.emplace(str(v, "name"), std::move(v));
    }

    const char *const classes[] = {"system.reqtrace.classRowHit.total",
                                   "system.reqtrace.classFast.total",
                                   "system.reqtrace.classSlow.total"};
    double span_count = 0.0, span_sum = 0.0;
    for (const char *name : classes) {
        ASSERT_TRUE(recs.count(name)) << name;
        span_count += num(recs.at(name), "count");
        span_sum += num(recs.at(name), "sum");
    }

    ASSERT_TRUE(recs.count("rollup.readLatency"));
    const JsonValue &all = recs.at("rollup.readLatency");
    double hist_count = num(all, "count");
    double hist_sum = num(all, "mean") * hist_count;
    EXPECT_GT(hist_count, 0.0);
    EXPECT_EQ(span_count, hist_count);
    EXPECT_NEAR(span_sum, hist_sum, hist_count /* 1 cycle/request */);

    // Per-span exactness: the five blame components telescope to the
    // total on every single exported span.
    std::uint64_t spans_checked = 0;
    for (const JsonValue &v : parseLines(r.spans)) {
        if (str(v, "type") != "span")
            continue;
        ++spans_checked;
        EXPECT_EQ(num(v, "waitQueue") + num(v, "waitBlock") +
                      num(v, "waitRefresh") + num(v, "rowLat") +
                      num(v, "service"),
                  num(v, "total"));
        EXPECT_GE(num(v, "waitQueue"), 0.0);
        EXPECT_GE(num(v, "rowLat"), 0.0);
        EXPECT_GE(num(v, "service"), 0.0);
    }
    EXPECT_GT(spans_checked, 0u);
}

TEST(RequestTracing, SpansOutWithoutSamplingIsFatal)
{
    SimConfig cfg = tracedConfig(/*rate=*/0.0, /*instructions=*/1000);
    cfg.obs.spansOut = "never_written.jsonl";
    SyntheticTrace trace(tinyProfile(), 1);
    EXPECT_DEATH(
        { System sys(cfg, {&trace}); }, "traceRequests");
}
