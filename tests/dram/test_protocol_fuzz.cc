/**
 * @file
 * Fixed-seed protocol fuzz tests. Three things are under test here:
 * the controller (a clean grid run must produce zero violations), the
 * checker (injected timing bugs in the controller's DramTiming must be
 * caught), and the harness itself (same seed, same run). Every failure
 * message carries the case name and seed so it replays with
 * `dasdram_fuzz --seed <base> --filter <name>`.
 */

#include <gtest/gtest.h>

#include "core/designs.hh"
#include "sim/fuzz.hh"

using namespace dasdram;

namespace
{

constexpr std::uint64_t kBaseSeed = 42;
constexpr unsigned kRequests = 1000;

/** Find one case of the grid by name (fatal if the grid renames it). */
FuzzCase
gridCase(const std::string &name, unsigned requests = kRequests)
{
    for (FuzzCase &c : defaultFuzzCases(kBaseSeed, requests)) {
        if (c.name == name)
            return c;
    }
    ADD_FAILURE() << "fuzz grid has no case named " << name;
    return FuzzCase{};
}

DramTiming
referenceTiming(const FuzzCase &c)
{
    return ddr3_1600Timing(designSpec(c.design).charmColumnOpt);
}

} // namespace

TEST(ProtocolFuzz, GridCleanUnderReferenceTiming)
{
    for (const FuzzCase &c : defaultFuzzCases(kBaseSeed, kRequests)) {
        FuzzReport rep = runProtocolFuzz(c);
        EXPECT_TRUE(rep.ok())
            << c.name << " seed=" << c.seed << " violations="
            << rep.violations << " drained=" << rep.drained
            << (rep.firstViolation.empty()
                    ? ""
                    : "\n  first: " + rep.firstViolation);
        EXPECT_GT(rep.commands, 0u) << c.name << " issued no commands";
    }
}

TEST(ProtocolFuzz, DeterministicReplay)
{
    FuzzCase c = gridCase("das/base");
    FuzzReport a = runProtocolFuzz(c);
    FuzzReport b = runProtocolFuzz(c);
    EXPECT_EQ(a.commands, b.commands) << "seed=" << c.seed;
    EXPECT_EQ(a.submitted, b.submitted);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.migrationsDone, b.migrationsDone);
    EXPECT_EQ(a.violations, b.violations);
}

TEST(ProtocolFuzz, InjectedTrcdBugDetected)
{
    FuzzCase c = gridCase("das/base");
    DramTiming dut = referenceTiming(c);
    dut.slow.tRCD -= 1;
    dut.fast.tRCD -= 1;
    FuzzReport rep = runProtocolFuzz(c, dut, referenceTiming(c));
    EXPECT_GT(rep.violations, 0u)
        << "tRCD shortened by one cycle went undetected (seed="
        << c.seed << ")";
    EXPECT_NE(rep.firstViolation.find("tRCD"), std::string::npos)
        << rep.firstViolation;
}

TEST(ProtocolFuzz, InjectedTccdBugDetected)
{
    FuzzCase c = gridCase("standard/base");
    DramTiming dut = referenceTiming(c);
    dut.tCCD -= 1;
    FuzzReport rep = runProtocolFuzz(c, dut, referenceTiming(c));
    EXPECT_GT(rep.violations, 0u)
        << "tCCD shortened by one cycle went undetected (seed="
        << c.seed << ")";
}

TEST(ProtocolFuzz, InjectedTfawBugDetected)
{
    FuzzCase c = gridCase("standard/base", 3000);
    DramTiming dut = referenceTiming(c);
    dut.tFAW /= 2;
    FuzzReport rep = runProtocolFuzz(c, dut, referenceTiming(c));
    EXPECT_GT(rep.violations, 0u)
        << "halved tFAW went undetected (seed=" << c.seed << ")";
    EXPECT_NE(rep.firstViolation.find("tFAW"), std::string::npos)
        << rep.firstViolation;
}

TEST(ProtocolFuzz, InjectedSwapLatencyBugDetected)
{
    FuzzCase c = gridCase("das/base");
    DramTiming dut = referenceTiming(c);
    dut.swapCycles -= 10;
    dut.migrationCycles -= 10;
    FuzzReport rep = runProtocolFuzz(c, dut, referenceTiming(c));
    EXPECT_GT(rep.violations, 0u)
        << "shortened migration window went undetected (seed="
        << c.seed << ")";
}
