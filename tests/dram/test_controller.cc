/**
 * @file
 * Integration-style tests for the channel controller: request service,
 * FR-FCFS behaviour, write handling, refresh and migrations.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dram/controller.hh"

using namespace dasdram;

namespace
{

struct ControllerHarness
{
    ControllerHarness(ControllerConfig cfg = {},
                      RowClass cls = RowClass::Slow)
        : geom(), timing(ddr3_1600Timing()), classifier(cls),
          ctrl(0, geom, timing, classifier, cfg)
    {
    }

    /** Submit a request; records completion time into done. */
    void
    submit(std::uint64_t row, std::uint64_t col, bool write, Cycle now,
           unsigned rank = 0, unsigned bank = 0)
    {
        auto req = std::make_unique<MemRequest>(0, write, 0);
        req->loc = DramLoc{0, rank, bank, row, col};
        req->addr = (row * 1000 + col) * 64; // unique-ish line id
        completions.emplace_back(kCycleMax, ServiceLocation::Unknown);
        std::size_t idx = completions.size() - 1;
        req->onComplete = [this, idx](MemRequest &r, Cycle at) {
            completions[idx] = {at, r.location};
        };
        ctrl.enqueue(std::move(req), now);
    }

    /** Tick up to and including @p until. */
    void
    runTo(Cycle until)
    {
        for (; now <= until; ++now)
            ctrl.tick(now);
    }

    /** Tick until all submitted requests completed (or limit). */
    void
    drain(Cycle limit = 100000)
    {
        while (now < limit) {
            ctrl.tick(now);
            ++now;
            bool all = true;
            for (auto &c : completions)
                all = all && c.first != kCycleMax;
            if (all && !ctrl.busy())
                return;
        }
    }

    DramGeometry geom;
    DramTiming timing;
    UniformRowClassifier classifier;
    ChannelController ctrl;
    std::vector<std::pair<Cycle, ServiceLocation>> completions;
    Cycle now = 0;
};

} // namespace

TEST(Controller, SingleReadLatency)
{
    ControllerHarness h;
    h.submit(5, 0, false, 0);
    h.drain();
    ASSERT_NE(h.completions[0].first, kCycleMax);
    // ACT at ~1 + tRCD + tCL + tBL.
    Cycle expected = 1 + h.timing.slow.tRCD + h.timing.slow.tCL +
                     h.timing.tBL;
    EXPECT_NEAR(static_cast<double>(h.completions[0].first),
                static_cast<double>(expected), 2.0);
    EXPECT_EQ(h.completions[0].second, ServiceLocation::SlowLevel);
    EXPECT_EQ(h.ctrl.readCount(), 1u);
    EXPECT_EQ(h.ctrl.actCountSlow(), 1u);
}

TEST(Controller, FastClassifierGivesFastService)
{
    ControllerHarness h({}, RowClass::Fast);
    h.submit(5, 0, false, 0);
    h.drain();
    EXPECT_EQ(h.completions[0].second, ServiceLocation::FastLevel);
    EXPECT_EQ(h.ctrl.actCountFast(), 1u);
    EXPECT_EQ(h.ctrl.actCountSlow(), 0u);
}

TEST(Controller, RowHitServedWithoutSecondActivate)
{
    ControllerHarness h;
    h.submit(5, 0, false, 0);
    h.submit(5, 1, false, 0);
    h.drain();
    EXPECT_EQ(h.ctrl.actCountSlow(), 1u);
    EXPECT_EQ(h.ctrl.rowHits(), 1u);
    EXPECT_EQ(h.completions[1].second, ServiceLocation::RowBuffer);
    EXPECT_GT(h.completions[1].first, h.completions[0].first);
}

TEST(Controller, RowConflictPrechargesAndReactivates)
{
    ControllerHarness h;
    h.submit(5, 0, false, 0);
    h.submit(9, 0, false, 0);
    h.drain();
    EXPECT_EQ(h.ctrl.actCountSlow(), 2u);
    // Second request waits at least tRAS + tRP + tRCD after first ACT.
    Cycle min_gap = h.timing.slow.tRC + h.timing.slow.tRCD;
    EXPECT_GE(h.completions[1].first,
              h.completions[0].first + min_gap -
                  (h.timing.slow.tCL + h.timing.tBL));
}

TEST(Controller, FrFcfsPrefersRowHitOverOlderConflict)
{
    ControllerHarness h;
    h.submit(5, 0, false, 0); // opens row 5
    h.runTo(h.timing.slow.tRCD + 2);
    h.submit(9, 0, false, h.now);  // older conflicting request
    h.submit(5, 3, false, h.now);  // younger row hit
    h.drain();
    // The row hit (index 2) must complete before the conflict (1).
    EXPECT_LT(h.completions[2].first, h.completions[1].first);
}

TEST(Controller, WritesDrainAndComplete)
{
    ControllerHarness h;
    for (std::uint64_t i = 0; i < 4; ++i)
        h.submit(3, i, true, 0);
    h.drain();
    EXPECT_EQ(h.ctrl.writeCount(), 4u);
    for (auto &c : h.completions)
        EXPECT_NE(c.first, kCycleMax);
}

TEST(Controller, WriteQueuedVisibleForForwarding)
{
    ControllerHarness h;
    h.submit(3, 1, true, 0);
    EXPECT_TRUE(h.ctrl.writeQueued((3 * 1000 + 1) * 64));
    EXPECT_FALSE(h.ctrl.writeQueued(0x999999));
}

TEST(Controller, QueueCapacityRespected)
{
    ControllerConfig cfg;
    cfg.readQueueDepth = 2;
    ControllerHarness h(cfg);
    EXPECT_TRUE(h.ctrl.canAccept(false));
    h.submit(1, 0, false, 0);
    h.submit(2, 0, false, 0);
    EXPECT_FALSE(h.ctrl.canAccept(false));
    EXPECT_TRUE(h.ctrl.canAccept(true)); // write queue separate
    h.drain();
    EXPECT_TRUE(h.ctrl.canAccept(false));
}

TEST(Controller, RefreshHappensPeriodically)
{
    ControllerHarness h;
    h.runTo(h.timing.tREFI + h.timing.tRFC + 10);
    EXPECT_GE(h.ctrl.rank(0).refreshCount(), 1u);
    EXPECT_GE(h.ctrl.rank(1).refreshCount(), 1u);
}

TEST(Controller, RefreshDisabledByConfig)
{
    ControllerConfig cfg;
    cfg.refreshEnabled = false;
    ControllerHarness h(cfg);
    h.runTo(2 * h.timing.tREFI);
    EXPECT_EQ(h.ctrl.rank(0).refreshCount(), 0u);
}

TEST(Controller, MigrationCompletesAndReportsCycle)
{
    ControllerHarness h;
    Cycle done_at = 0;
    MigrationJob job;
    job.rank = 0;
    job.bank = 0;
    job.rowA = 10;
    job.rowB = 20;
    job.rowLo = 0;
    job.rowHi = 32;
    job.onDone = [&](Cycle at) { done_at = at; };
    h.ctrl.addMigration(std::move(job));
    EXPECT_EQ(h.ctrl.pendingMigrations(), 1u);
    h.drain();
    EXPECT_GT(done_at, 0u);
    EXPECT_GE(done_at, h.timing.swapCycles);
    EXPECT_EQ(h.ctrl.migrationCount(), 1u);
}

TEST(Controller, MigrationBlocksGroupRowsButNotOthers)
{
    ControllerConfig cfg;
    cfg.migrationMaxDefer = 0; // start immediately
    ControllerHarness h(cfg);
    MigrationJob job;
    job.rank = 0;
    job.bank = 0;
    job.rowA = 10;
    job.rowB = 4;
    job.rowLo = 0;
    job.rowHi = 32;
    h.ctrl.addMigration(std::move(job));
    h.runTo(3); // migration reserved
    // A request to a blocked row waits until the swap ends; a request
    // to another bank region completes quickly.
    h.submit(16, 0, false, h.now); // inside [0,32), not exempt
    h.submit(100, 0, false, h.now);
    h.drain();
    EXPECT_GT(h.completions[0].first,
              h.timing.swapCycles); // waited out the swap
    EXPECT_LT(h.completions[1].first, h.timing.swapCycles);
}

TEST(Controller, MigrationDefersToPendingGroupRequests)
{
    ControllerHarness h; // default defer budget
    h.submit(16, 0, false, 0);
    MigrationJob job;
    job.rank = 0;
    job.bank = 0;
    job.rowA = 10;
    job.rowB = 4;
    job.rowLo = 0;
    job.rowHi = 32;
    Cycle done_at = 0;
    job.onDone = [&](Cycle at) { done_at = at; };
    h.ctrl.addMigration(std::move(job));
    h.drain();
    // The demand read completed before the migration finished.
    EXPECT_LT(h.completions[0].first, done_at);
}

TEST(Controller, FcfsPolicyServesInOrder)
{
    ControllerConfig cfg;
    cfg.sched = SchedPolicy::Fcfs;
    ControllerHarness h(cfg);
    h.submit(5, 0, false, 0);
    h.submit(9, 0, false, 0); // conflict
    h.submit(5, 1, false, 0); // would be a row hit under FR-FCFS
    h.drain();
    // Strict order: 0 then 1 then 2.
    EXPECT_LT(h.completions[0].first, h.completions[1].first);
    EXPECT_LT(h.completions[1].first, h.completions[2].first);
}

TEST(Controller, ClosedPagePolicyPrechargesIdleRows)
{
    ControllerConfig cfg;
    cfg.page = PagePolicy::Closed;
    ControllerHarness h(cfg);
    h.submit(5, 0, false, 0);
    h.drain();
    h.runTo(h.now + h.timing.slow.tRC + 5);
    // Row was closed after service: a new request to the same row needs
    // a fresh ACT.
    h.submit(5, 1, false, h.now);
    h.drain();
    EXPECT_EQ(h.ctrl.actCountSlow(), 2u);
    EXPECT_EQ(h.ctrl.rowHits(), 0u);
}
