/**
 * @file
 * Direct unit tests of the ProtocolChecker: hand-built command streams
 * that are legal (zero violations) or break exactly one timing rule
 * (the violation is reported and names the rule). Timing figures used
 * below are DDR3-1600: slow tRCD 11 / tRAS 28 / tRP 11 / tRC 39 /
 * tCL 11, tCWL 8, tBL 4, tCCD 4, tRRD 6, tFAW 32, tWTR 6, tRTP 6,
 * tWR 12, tRFC 128, tRTRS 2, swap 117 cycles.
 */

#include <gtest/gtest.h>

#include "dram/protocol_checker.hh"

using namespace dasdram;

namespace
{

CmdRecord
act(Cycle t, unsigned bank, std::uint64_t row,
    RowClass cls = RowClass::Slow, unsigned rank = 0)
{
    CmdRecord r;
    r.cycle = t;
    r.cmd = DramCommand::ACT;
    r.rank = rank;
    r.bank = bank;
    r.row = row;
    r.rowClass = cls;
    return r;
}

CmdRecord
col(DramCommand cmd, Cycle t, unsigned bank, std::uint64_t row,
    RowClass cls = RowClass::Slow, unsigned rank = 0)
{
    CmdRecord r;
    r.cycle = t;
    r.cmd = cmd;
    r.rank = rank;
    r.bank = bank;
    r.row = row;
    r.rowClass = cls;
    return r;
}

CmdRecord
pre(Cycle t, unsigned bank, std::uint64_t row,
    RowClass cls = RowClass::Slow, unsigned rank = 0)
{
    CmdRecord r;
    r.cycle = t;
    r.cmd = DramCommand::PRE;
    r.rank = rank;
    r.bank = bank;
    r.row = row;
    r.rowClass = cls;
    return r;
}

CmdRecord
ref(Cycle t, Cycle duration, unsigned rank = 0)
{
    CmdRecord r;
    r.cycle = t;
    r.cmd = DramCommand::REF;
    r.rank = rank;
    r.duration = duration;
    return r;
}

CmdRecord
migrate(Cycle t, unsigned bank, std::uint64_t row_a, std::uint64_t row_b,
        std::uint64_t lo, std::uint64_t hi, Cycle duration,
        std::uint64_t id = 1)
{
    CmdRecord r;
    r.cycle = t;
    r.cmd = DramCommand::MIGRATE;
    r.bank = bank;
    r.row = row_a;
    r.rowB = row_b;
    r.rowLo = lo;
    r.rowHi = hi;
    r.duration = duration;
    r.migrationId = id;
    return r;
}

class ProtocolCheckerTest : public ::testing::Test
{
  protected:
    ProtocolCheckerTest()
        : timing(ddr3_1600Timing()), checker(geom, timing)
    {}

    void
    feed(std::initializer_list<CmdRecord> recs)
    {
        for (const CmdRecord &r : recs)
            checker.onCommand(r);
    }

    DramGeometry geom{};
    DramTiming timing;
    ProtocolChecker checker;
};

} // namespace

TEST_F(ProtocolCheckerTest, CleanReadSequence)
{
    feed({act(0, 0, 7), col(DramCommand::RD, 11, 0, 7), pre(28, 0, 7),
          act(39, 0, 8)});
    EXPECT_EQ(checker.violationCount(), 0u);
    EXPECT_EQ(checker.commandCount(), 4u);
    EXPECT_TRUE(checker.firstViolation().empty());
}

TEST_F(ProtocolCheckerTest, FastRowUsesFastTiming)
{
    // Fast class: tRCD 7, tRP 9 — legal where slow (11/11) would not.
    // The RD pins the PRE at 7+tRTP=13, so the next ACT waits for
    // max(tRC=20, 13+tRP=22) = 22.
    feed({act(0, 0, 3, RowClass::Fast),
          col(DramCommand::RD, 7, 0, 3, RowClass::Fast),
          pre(13, 0, 3, RowClass::Fast), act(22, 0, 4, RowClass::Fast)});
    EXPECT_EQ(checker.violationCount(), 0u);
}

TEST_F(ProtocolCheckerTest, ActWhileRowOpen)
{
    feed({act(0, 0, 7), act(50, 0, 8)});
    EXPECT_GE(checker.violationCount(), 1u);
    EXPECT_NE(checker.firstViolation().find("already open"),
              std::string::npos);
}

TEST_F(ProtocolCheckerTest, TrcdViolation)
{
    feed({act(0, 0, 7), col(DramCommand::RD, 10, 0, 7)});
    EXPECT_EQ(checker.violationCount(), 1u);
    EXPECT_NE(checker.firstViolation().find("tRCD"), std::string::npos);
}

TEST_F(ProtocolCheckerTest, TccdViolation)
{
    feed({act(0, 0, 7), col(DramCommand::RD, 11, 0, 7),
          col(DramCommand::RD, 13, 0, 7)});
    EXPECT_GE(checker.violationCount(), 1u);
    EXPECT_NE(checker.firstViolation().find("tCCD"), std::string::npos);
}

TEST_F(ProtocolCheckerTest, TrrdViolation)
{
    feed({act(0, 0, 7), act(3, 1, 9)});
    EXPECT_EQ(checker.violationCount(), 1u);
    EXPECT_NE(checker.firstViolation().find("tRRD"), std::string::npos);
}

TEST_F(ProtocolCheckerTest, TfawViolation)
{
    // Four ACTs at the tRRD rate, then a fifth inside the 32-cycle
    // four-activate window.
    feed({act(0, 0, 1), act(6, 1, 1), act(12, 2, 1), act(18, 3, 1),
          act(24, 4, 1)});
    EXPECT_EQ(checker.violationCount(), 1u);
    EXPECT_NE(checker.firstViolation().find("tFAW"), std::string::npos);
}

TEST_F(ProtocolCheckerTest, TwtrViolation)
{
    // WR at 11 bursts over [19, 23); reads allowed from 29.
    feed({act(0, 0, 7), col(DramCommand::WR, 11, 0, 7),
          col(DramCommand::RD, 27, 0, 7)});
    EXPECT_EQ(checker.violationCount(), 1u);
    EXPECT_NE(checker.firstViolation().find("tWTR"), std::string::npos);
}

TEST_F(ProtocolCheckerTest, PreBeforeTras)
{
    feed({act(0, 0, 7), pre(20, 0, 7)});
    EXPECT_EQ(checker.violationCount(), 1u);
    EXPECT_NE(checker.firstViolation().find("tRAS"), std::string::npos);
}

TEST_F(ProtocolCheckerTest, PreBeforeWriteRecovery)
{
    // WR burst ends at 23; tWR pushes the earliest PRE to 35.
    feed({act(0, 0, 7), col(DramCommand::WR, 11, 0, 7), pre(30, 0, 7)});
    EXPECT_EQ(checker.violationCount(), 1u);
    EXPECT_NE(checker.firstViolation().find("tWR"), std::string::npos);
}

TEST_F(ProtocolCheckerTest, RefreshWithOpenBank)
{
    feed({act(0, 0, 7), ref(50, 128)});
    EXPECT_GE(checker.violationCount(), 1u);
    EXPECT_NE(checker.firstViolation().find("open"), std::string::npos);
}

TEST_F(ProtocolCheckerTest, RefreshBeforeBankRecovered)
{
    // After ACT@0 / PRE@28 the bank array is busy until 39.
    feed({act(0, 0, 7), pre(28, 0, 7), ref(30, 128)});
    EXPECT_EQ(checker.violationCount(), 1u);
    EXPECT_NE(checker.firstViolation().find("busy"), std::string::npos);
}

TEST_F(ProtocolCheckerTest, RefreshWrongDuration)
{
    feed({ref(200, 100)});
    EXPECT_EQ(checker.violationCount(), 1u);
    EXPECT_NE(checker.firstViolation().find("tRFC"), std::string::npos);
}

TEST_F(ProtocolCheckerTest, ActAndColumnToRowMidMigration)
{
    // Swap holds rows [32, 64) (exempt 40 and 33) for 117 cycles; an
    // ACT into the blocked range and the column access that follows
    // are both illegal.
    feed({migrate(0, 0, 40, 33, 32, 64, timing.swapCycles),
          act(5, 0, 50), col(DramCommand::RD, 16, 0, 50)});
    EXPECT_EQ(checker.violationCount(), 2u);
    EXPECT_NE(checker.firstViolation().find("blocked"),
              std::string::npos);
    EXPECT_NE(checker.messages()[1].find("mid-migration"),
              std::string::npos);
}

TEST_F(ProtocolCheckerTest, ExemptRowsStayAccessibleDuringMigration)
{
    // The two rows being swapped sit in the half row buffers and stay
    // serviceable; rows outside the range are unaffected.
    feed({migrate(0, 0, 40, 33, 32, 64, timing.swapCycles),
          act(5, 0, 40), col(DramCommand::RD, 16, 0, 40),
          pre(33, 0, 40), act(44, 0, 10)});
    EXPECT_EQ(checker.violationCount(), 0u);
}

TEST_F(ProtocolCheckerTest, MigrateWhileReserved)
{
    feed({migrate(0, 0, 40, 33, 32, 64, timing.swapCycles, 1),
          migrate(50, 0, 8, 1, 0, 32, timing.swapCycles, 2)});
    EXPECT_EQ(checker.violationCount(), 1u);
    EXPECT_NE(checker.firstViolation().find("exclusivity"),
              std::string::npos);
}

TEST_F(ProtocolCheckerTest, MigrateDuringPrechargeWindow)
{
    // The array is busy until cycle 39 after ACT@0 / PRE@28.
    feed({act(0, 0, 7), pre(28, 0, 7),
          migrate(30, 0, 8, 1, 0, 32, timing.swapCycles)});
    EXPECT_EQ(checker.violationCount(), 1u);
    EXPECT_NE(checker.firstViolation().find("busy"), std::string::npos);
}

TEST_F(ProtocolCheckerTest, MigratedRowsMustBeInsideBlockedRange)
{
    feed({migrate(0, 0, 40, 70, 32, 64, timing.swapCycles)});
    EXPECT_EQ(checker.violationCount(), 1u);
    EXPECT_NE(checker.firstViolation().find("outside"),
              std::string::npos);
}

TEST_F(ProtocolCheckerTest, MigrationDurationChecked)
{
    feed({migrate(0, 0, 40, 33, 32, 64, timing.swapCycles - 10)});
    EXPECT_EQ(checker.violationCount(), 1u);
    EXPECT_NE(checker.firstViolation().find("busy time"),
              std::string::npos);
}

TEST_F(ProtocolCheckerTest, RowClassCoherenceAgainstClassifier)
{
    UniformRowClassifier all_slow(RowClass::Slow);
    ProtocolChecker checked(geom, timing, &all_slow);
    checked.onCommand(act(0, 0, 7, RowClass::Fast));
    EXPECT_EQ(checked.violationCount(), 1u);
    EXPECT_NE(checked.firstViolation().find("row-class mismatch"),
              std::string::npos);
}

TEST_F(ProtocolCheckerTest, TwoCommandsInOneCycle)
{
    feed({act(0, 0, 7), act(0, 1, 9)});
    EXPECT_GE(checker.violationCount(), 1u);
    EXPECT_NE(checker.firstViolation().find("second command"),
              std::string::npos);
}

TEST_F(ProtocolCheckerTest, TimeMovingBackwards)
{
    feed({act(10, 0, 7), pre(5, 0, 7)});
    EXPECT_GE(checker.violationCount(), 1u);
    EXPECT_NE(checker.firstViolation().find("backwards"),
              std::string::npos);
}

TEST_F(ProtocolCheckerTest, DataBusRankSwitchPenalty)
{
    // RD in rank 0 bursts over [28, 32); the rank-1 RD's burst would
    // start at 32 but tRTRS makes the bus free only at 34.
    feed({act(0, 0, 7, RowClass::Slow, 0),
          act(6, 0, 9, RowClass::Slow, 1),
          col(DramCommand::RD, 17, 0, 7, RowClass::Slow, 0),
          col(DramCommand::RD, 21, 0, 9, RowClass::Slow, 1)});
    EXPECT_EQ(checker.violationCount(), 1u);
    EXPECT_NE(checker.firstViolation().find("data-bus"),
              std::string::npos);
}

TEST_F(ProtocolCheckerTest, ColumnToWrongRow)
{
    feed({act(0, 0, 7), col(DramCommand::RD, 11, 0, 8)});
    EXPECT_EQ(checker.violationCount(), 1u);
    EXPECT_NE(checker.firstViolation().find("open"), std::string::npos);
}

TEST_F(ProtocolCheckerTest, ColumnToPrechargedBank)
{
    feed({col(DramCommand::RD, 5, 0, 7)});
    EXPECT_EQ(checker.violationCount(), 1u);
    EXPECT_NE(checker.firstViolation().find("precharged"),
              std::string::npos);
}

TEST_F(ProtocolCheckerTest, ResetClearsStateAndResults)
{
    feed({act(0, 0, 7), col(DramCommand::RD, 10, 0, 7)});
    ASSERT_GE(checker.violationCount(), 1u);
    checker.reset();
    EXPECT_EQ(checker.violationCount(), 0u);
    EXPECT_EQ(checker.commandCount(), 0u);
    // State is fresh: the same bank can be activated at cycle 0 again.
    feed({act(0, 0, 7)});
    EXPECT_EQ(checker.violationCount(), 0u);
}

TEST_F(ProtocolCheckerTest, ViolationCountUnboundedMessagesBounded)
{
    for (unsigned i = 0; i < 100; ++i)
        checker.onCommand(col(DramCommand::RD, 5 + i, 0, 7));
    EXPECT_EQ(checker.violationCount(), 100u);
    EXPECT_EQ(checker.messages().size(),
              ProtocolChecker::kMaxStoredMessages);
}
