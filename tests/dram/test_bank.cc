/**
 * @file
 * Unit tests for the bank state machine, including row-class-dependent
 * timing and migration reservations.
 */

#include <gtest/gtest.h>

#include "dram/bank.hh"

using namespace dasdram;

class BankTest : public ::testing::Test
{
  protected:
    BankTest() : timing(ddr3_1600Timing()), bank(timing) {}

    DramTiming timing;
    Bank bank;
};

TEST_F(BankTest, PowerUpIdle)
{
    EXPECT_FALSE(bank.hasOpenRow());
    EXPECT_TRUE(bank.canActivate(0, 5));
    EXPECT_FALSE(bank.canPrecharge(0));
    EXPECT_FALSE(bank.canColumn(0));
}

TEST_F(BankTest, ActivateOpensRowAfterTrcd)
{
    bank.activate(0, 42, RowClass::Slow);
    EXPECT_TRUE(bank.hasOpenRow());
    EXPECT_EQ(bank.openRow(), 42u);
    EXPECT_EQ(bank.openRowClass(), RowClass::Slow);
    EXPECT_FALSE(bank.canColumn(timing.slow.tRCD - 1));
    EXPECT_TRUE(bank.canColumn(timing.slow.tRCD));
}

TEST_F(BankTest, FastRowUsesFastTiming)
{
    bank.activate(0, 7, RowClass::Fast);
    EXPECT_FALSE(bank.canColumn(timing.fast.tRCD - 1));
    EXPECT_TRUE(bank.canColumn(timing.fast.tRCD));
    // Precharge allowed at fast tRAS, before slow tRAS.
    EXPECT_FALSE(bank.canPrecharge(timing.fast.tRAS - 1));
    EXPECT_TRUE(bank.canPrecharge(timing.fast.tRAS));
}

TEST_F(BankTest, TrasGatesPrecharge)
{
    bank.activate(0, 1, RowClass::Slow);
    EXPECT_FALSE(bank.canPrecharge(timing.slow.tRAS - 1));
    EXPECT_TRUE(bank.canPrecharge(timing.slow.tRAS));
}

TEST_F(BankTest, TrcGatesNextActivate)
{
    bank.activate(0, 1, RowClass::Slow);
    bank.precharge(timing.slow.tRAS);
    EXPECT_FALSE(bank.hasOpenRow());
    // Next ACT gated by tRAS + tRP == tRC.
    EXPECT_FALSE(bank.canActivate(timing.slow.tRC - 1, 2));
    EXPECT_TRUE(bank.canActivate(timing.slow.tRC, 2));
}

TEST_F(BankTest, LatePrechargeDelaysActivate)
{
    bank.activate(0, 1, RowClass::Slow);
    Cycle pre_at = timing.slow.tRAS + 10;
    bank.precharge(pre_at);
    EXPECT_FALSE(bank.canActivate(pre_at + timing.slow.tRP - 1, 2));
    EXPECT_TRUE(bank.canActivate(pre_at + timing.slow.tRP, 2));
}

TEST_F(BankTest, ReadReturnsBurstEndAndGatesPrecharge)
{
    bank.activate(0, 1, RowClass::Slow);
    Cycle rd_at = timing.slow.tRCD;
    Cycle end = bank.read(rd_at);
    EXPECT_EQ(end, rd_at + timing.slow.tCL + timing.tBL);
    // tRTP pushes precharge but never below tRAS.
    EXPECT_GE(bank.preAllowedAt(), rd_at + timing.tRTP);
}

TEST_F(BankTest, WriteRecoveryGatesPrecharge)
{
    bank.activate(0, 1, RowClass::Slow);
    Cycle wr_at = timing.slow.tRCD;
    Cycle end = bank.write(wr_at);
    EXPECT_EQ(end, wr_at + timing.tCWL + timing.tBL);
    EXPECT_FALSE(bank.canPrecharge(end + timing.tWR - 1));
    EXPECT_TRUE(bank.canPrecharge(end + timing.tWR));
}

TEST_F(BankTest, ReservationBlocksOnlyRange)
{
    bank.reserve(0, 100, 32, 64);
    EXPECT_TRUE(bank.reserved(50));
    EXPECT_TRUE(bank.rowBlocked(50, 40));
    EXPECT_FALSE(bank.rowBlocked(50, 10));
    EXPECT_FALSE(bank.rowBlocked(50, 64));
    EXPECT_FALSE(bank.canActivate(50, 40));
    EXPECT_TRUE(bank.canActivate(50, 10));
    // After expiry everything is accessible again.
    EXPECT_FALSE(bank.reserved(100));
    EXPECT_TRUE(bank.canActivate(100, 40));
}

TEST_F(BankTest, ReservationExemptsSwapRows)
{
    bank.reserve(0, 100, 32, 64, 40, 50);
    EXPECT_FALSE(bank.rowBlocked(10, 40));
    EXPECT_FALSE(bank.rowBlocked(10, 50));
    EXPECT_TRUE(bank.rowBlocked(10, 41));
}

TEST_F(BankTest, OpenRowOutsideRangeSurvivesReservation)
{
    bank.activate(0, 5, RowClass::Slow);
    bank.reserve(1, 100, 32, 64);
    EXPECT_TRUE(bank.hasOpenRow());
    EXPECT_TRUE(bank.canColumn(timing.slow.tRCD));
}

TEST_F(BankTest, ResetRestoresPowerUpState)
{
    bank.activate(0, 1, RowClass::Fast);
    bank.reset();
    EXPECT_FALSE(bank.hasOpenRow());
    EXPECT_TRUE(bank.canActivate(0, 1));
}

using BankDeathTest = BankTest;

TEST_F(BankDeathTest, DoubleActivatePanics)
{
    bank.activate(0, 1, RowClass::Slow);
    EXPECT_DEATH(bank.activate(1, 2, RowClass::Slow), "timing violation");
}

TEST_F(BankDeathTest, EarlyColumnPanics)
{
    bank.activate(0, 1, RowClass::Slow);
    EXPECT_DEATH(bank.read(0), "timing violation");
}

TEST_F(BankDeathTest, ReserveOverOpenRowInRangePanics)
{
    bank.activate(0, 40, RowClass::Slow);
    EXPECT_DEATH(bank.reserve(1, 100, 32, 64), "open row");
}

// The readiness cache in the controller keys on the bank version: every
// mutator must bump it, and non-mutating queries must not, or a cached
// earliest-ready cycle would survive a state transition it depends on.
TEST_F(BankTest, VersionBumpsOnEveryMutator)
{
    std::uint64_t v = bank.version();

    bank.activate(0, 5, RowClass::Slow);
    EXPECT_GT(bank.version(), v);
    v = bank.version();

    bank.read(timing.slow.tRCD);
    EXPECT_GT(bank.version(), v);
    v = bank.version();

    bank.write(timing.slow.tRCD + 10);
    EXPECT_GT(bank.version(), v);
    v = bank.version();

    Cycle pre_at = bank.preAllowedAt();
    bank.precharge(pre_at);
    EXPECT_GT(bank.version(), v);
    v = bank.version();

    bank.reserve(pre_at, 100, 32, 64, 40, 50);
    EXPECT_GT(bank.version(), v);
    v = bank.version();

    bank.refresh(pre_at + 200 + timing.tRFC);
    EXPECT_GT(bank.version(), v);
    v = bank.version();

    bank.reset();
    EXPECT_GT(bank.version(), v);
}

TEST_F(BankTest, VersionStableAcrossQueries)
{
    bank.activate(0, 5, RowClass::Fast);
    const std::uint64_t v = bank.version();
    (void)bank.hasOpenRow();
    (void)bank.openRow();
    (void)bank.canColumn(timing.fast.tRCD);
    (void)bank.canPrecharge(timing.fast.tRAS);
    (void)bank.canActivate(0, 9);
    (void)bank.rowBlocked(0, 5);
    (void)bank.reserved(0);
    EXPECT_EQ(bank.version(), v);
}

// Reset is an invalidation edge of its own: any cached ready cycle
// derived from pre-reset state must be discarded even though the bank
// looks "idle" again afterwards.
TEST_F(BankTest, ResetInvalidatesDespiteIdleLookalike)
{
    const std::uint64_t v0 = bank.version();
    bank.activate(0, 1, RowClass::Slow);
    bank.reset();
    EXPECT_FALSE(bank.hasOpenRow());
    EXPECT_GT(bank.version(), v0);
}
