/**
 * @file
 * Unit tests for the DDR3-1600 timing parameters (Table 1 values).
 */

#include <gtest/gtest.h>

#include "dram/timing.hh"
#include "mem/clock.hh"

using namespace dasdram;

TEST(Timing, Table1SlowParameters)
{
    DramTiming t = ddr3_1600Timing();
    EXPECT_EQ(t.slow.tRCD, 11u); // 13.75 ns
    EXPECT_EQ(t.slow.tRP, 11u);
    EXPECT_EQ(t.slow.tRAS, 28u); // 35 ns
    EXPECT_EQ(t.slow.tRC, 39u);  // 48.75 ns
    EXPECT_TRUE(t.slow.consistent());
}

TEST(Timing, Table1FastParameters)
{
    DramTiming t = ddr3_1600Timing();
    EXPECT_EQ(t.fast.tRCD, 7u); // 8.75 ns
    EXPECT_EQ(t.fast.tRC, 20u); // 25 ns
    EXPECT_TRUE(t.fast.consistent());
    EXPECT_LT(t.fast.tRCD, t.slow.tRCD);
    EXPECT_LT(t.fast.tRC, t.slow.tRC);
}

TEST(Timing, MigrationLatencyMatchesTable1)
{
    DramTiming t = ddr3_1600Timing();
    // Table 1: migration (swap) latency 146.25 ns = 117 cycles = 3 tRC.
    EXPECT_EQ(t.swapCycles, 117u);
    EXPECT_EQ(t.swapCycles, expectedSwapCycles(t));
    // One migration ~ 1.5 tRC.
    EXPECT_NEAR(static_cast<double>(t.migrationCycles),
                1.5 * static_cast<double>(t.slow.tRC), 1.0);
}

TEST(Timing, CharmColumnOptOnlyChangesFastTcl)
{
    DramTiming base = ddr3_1600Timing(false);
    DramTiming charm = ddr3_1600Timing(true);
    EXPECT_EQ(base.fast.tCL, base.slow.tCL);
    EXPECT_LT(charm.fast.tCL, charm.slow.tCL);
    EXPECT_EQ(charm.slow.tCL, base.slow.tCL);
    EXPECT_EQ(charm.fast.tRCD, base.fast.tRCD);
}

TEST(Timing, SharedBusParameters)
{
    DramTiming t = ddr3_1600Timing();
    EXPECT_EQ(t.tBL, 4u);
    EXPECT_EQ(t.tCCD, 4u);
    EXPECT_EQ(t.tFAW, 32u);   // 40 ns
    EXPECT_EQ(t.tRFC, 128u);  // 160 ns
    EXPECT_EQ(t.tREFI, 6240u); // 7.8 us
    EXPECT_GE(t.tFAW, 4 * t.tRRD / 2); // sane relationship
}

TEST(Timing, ReadLatencyPerClass)
{
    DramTiming t = ddr3_1600Timing(true);
    EXPECT_EQ(t.readLatency(RowClass::Slow), t.slow.tCL + t.tBL);
    EXPECT_LT(t.readLatency(RowClass::Fast),
              t.readLatency(RowClass::Slow));
}

TEST(Clock, TickConversions)
{
    EXPECT_EQ(nsToMemCycles(13.75), 11u);
    EXPECT_EQ(nsToMemCycles(48.75), 39u);
    EXPECT_EQ(nsToMemCycles(1.25), 1u);
    EXPECT_EQ(cpuCyclesToTicks(3), 12u);  // 3 GHz CPU → 4 ticks/cycle
    EXPECT_EQ(memCyclesToTicks(2), 30u);  // 800 MHz → 15 ticks/cycle
    EXPECT_EQ(nsToTicks(1.0), 12u);
}
