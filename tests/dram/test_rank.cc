/**
 * @file
 * Unit tests for rank-level constraints (tRRD, tFAW, tWTR, refresh).
 */

#include <gtest/gtest.h>

#include "dram/rank.hh"

using namespace dasdram;

class RankTest : public ::testing::Test
{
  protected:
    RankTest() : timing(ddr3_1600Timing()), rank(timing, 8) {}

    DramTiming timing;
    Rank rank;
};

TEST_F(RankTest, FirstActivateUnconstrained)
{
    EXPECT_TRUE(rank.canActivate(0));
    EXPECT_EQ(rank.activateAllowedAt(), 0u);
}

TEST_F(RankTest, TrrdBetweenActivates)
{
    rank.recordActivate(0);
    EXPECT_FALSE(rank.canActivate(timing.tRRD - 1));
    EXPECT_TRUE(rank.canActivate(timing.tRRD));
}

TEST_F(RankTest, TfawLimitsFourActivates)
{
    // Four ACTs spaced at tRRD: the fifth must wait for tFAW from the
    // first.
    Cycle t = 0;
    for (int i = 0; i < 4; ++i) {
        rank.recordActivate(t);
        t += timing.tRRD;
    }
    EXPECT_EQ(rank.activateAllowedAt(),
              std::max<Cycle>(t - timing.tRRD + timing.tRRD,
                              timing.tFAW));
    EXPECT_FALSE(rank.canActivate(timing.tFAW - 1));
    EXPECT_TRUE(rank.canActivate(timing.tFAW));
}

TEST_F(RankTest, TfawWindowSlides)
{
    rank.recordActivate(0);
    rank.recordActivate(10);
    rank.recordActivate(20);
    rank.recordActivate(30);
    // Fifth ACT: gated by max(tRRD from 30, tFAW from 0) = 36.
    EXPECT_EQ(rank.activateAllowedAt(),
              std::max<Cycle>(30 + timing.tRRD, timing.tFAW));
    rank.recordActivate(36);
    // Next is constrained by the ACT at cycle 10 (tFAW) vs tRRD.
    EXPECT_EQ(rank.activateAllowedAt(),
              std::max<Cycle>(36 + timing.tRRD, 10 + timing.tFAW));
}

TEST_F(RankTest, WriteToReadTurnaround)
{
    rank.recordWriteBurst(100);
    EXPECT_EQ(rank.readAllowedAt(), 100 + timing.tWTR);
}

TEST_F(RankTest, RefreshScheduleAdvances)
{
    EXPECT_FALSE(rank.refreshDue(timing.tREFI - 1));
    EXPECT_TRUE(rank.refreshDue(timing.tREFI));
    rank.refresh(timing.tREFI);
    EXPECT_EQ(rank.refreshCount(), 1u);
    EXPECT_EQ(rank.nextRefreshAt(), 2 * timing.tREFI);
    // Banks blocked until tRFC elapses.
    EXPECT_FALSE(rank.bank(0).canActivate(timing.tREFI + timing.tRFC - 1,
                                          0));
    EXPECT_TRUE(rank.bank(0).canActivate(timing.tREFI + timing.tRFC, 0));
}

TEST_F(RankTest, LateRefreshDoesNotScheduleInPast)
{
    Cycle late = 5 * timing.tREFI;
    rank.refresh(late);
    EXPECT_GT(rank.nextRefreshAt(), late);
}

TEST_F(RankTest, AllBanksIdleChecksOpenRows)
{
    EXPECT_TRUE(rank.allBanksIdle(0));
    rank.bank(3).activate(0, 1, RowClass::Slow);
    EXPECT_FALSE(rank.allBanksIdle(0));
    rank.bank(3).precharge(timing.slow.tRAS);
    EXPECT_TRUE(rank.allBanksIdle(timing.slow.tRAS));
}

TEST_F(RankTest, AllBanksIdleChecksReservations)
{
    rank.bank(2).reserve(0, 117, 0, 32);
    EXPECT_FALSE(rank.allBanksIdle(50));
    EXPECT_TRUE(rank.allBanksIdle(117));
}

using RankDeathTest = RankTest;

TEST_F(RankDeathTest, RefreshWithOpenBankPanics)
{
    rank.bank(0).activate(0, 1, RowClass::Slow);
    EXPECT_DEATH(rank.refresh(timing.tREFI), "open or reserved");
}

// The controller's readiness cache keys on rank.version() for the
// rank-wide constraints (tRRD/tFAW window, tWTR, refresh): each of the
// rank-level mutators must bump it and queries must leave it alone.
TEST_F(RankTest, VersionBumpsOnRankMutators)
{
    std::uint64_t v = rank.version();

    rank.recordActivate(0);
    EXPECT_GT(rank.version(), v);
    v = rank.version();

    rank.recordWriteBurst(100);
    EXPECT_GT(rank.version(), v);
    v = rank.version();

    rank.refresh(timing.tREFI);
    EXPECT_GT(rank.version(), v);
}

TEST_F(RankTest, VersionStableAcrossQueries)
{
    rank.recordActivate(0);
    const std::uint64_t v = rank.version();
    (void)rank.canActivate(1);
    (void)rank.activateAllowedAt();
    (void)rank.readAllowedAt();
    (void)rank.refreshDue(0);
    (void)rank.nextRefreshAt();
    (void)rank.allBanksIdle(1);
    EXPECT_EQ(rank.version(), v);
}
