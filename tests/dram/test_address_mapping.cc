/**
 * @file
 * Unit and property tests for the address mapper.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "dram/address_mapping.hh"

using namespace dasdram;

class MappingRoundTrip : public ::testing::TestWithParam<MappingScheme>
{
};

TEST_P(MappingRoundTrip, EncodeDecodeIdentity)
{
    DramGeometry g;
    AddressMapper m(g, GetParam());
    for (Addr a : {Addr{0}, Addr{64}, Addr{8192}, Addr{123456 * 64},
                   Addr{g.capacityBytes() - 64}}) {
        DramLoc loc = m.decode(a);
        EXPECT_EQ(m.encode(loc), a) << "addr " << a;
    }
}

TEST_P(MappingRoundTrip, FieldsWithinBounds)
{
    DramGeometry g;
    AddressMapper m(g, GetParam());
    for (Addr a = 0; a < 64 * MiB; a += 64 * 1021) { // odd stride
        DramLoc loc = m.decode(a);
        EXPECT_LT(loc.channel, g.channels);
        EXPECT_LT(loc.rank, g.ranksPerChannel);
        EXPECT_LT(loc.bank, g.banksPerRank);
        EXPECT_LT(loc.row, g.rowsPerBank);
        EXPECT_LT(loc.column, g.linesPerRow());
    }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, MappingRoundTrip,
                         ::testing::Values(MappingScheme::RoRaBaChCo,
                                           MappingScheme::RoBaRaChCo,
                                           MappingScheme::ChRaBaRoCo));

TEST(AddressMapper, ContiguousRowIsOneDramRow)
{
    // With RoRaBaChCo, one 8 KB-aligned block maps to a single row of a
    // single bank — the property row-level migration relies on.
    DramGeometry g;
    AddressMapper m(g, MappingScheme::RoRaBaChCo);
    DramLoc first = m.decode(0);
    for (Addr a = 0; a < g.rowBytes; a += g.lineBytes) {
        DramLoc loc = m.decode(a);
        EXPECT_TRUE(loc.sameRow(first));
        EXPECT_EQ(loc.column, a / g.lineBytes);
    }
    // The next 8 KB block goes to a different channel (interleaving).
    DramLoc next = m.decode(g.rowBytes);
    EXPECT_NE(next.channel, first.channel);
}

TEST(AddressMapper, RowStrideCoversAllBanksBeforeNextRow)
{
    DramGeometry g;
    AddressMapper m(g, MappingScheme::RoRaBaChCo);
    std::set<std::tuple<unsigned, unsigned, unsigned>> banks;
    Addr stride = g.rowBytes;
    Addr blocks_per_row_sweep = static_cast<Addr>(g.channels) *
                                g.ranksPerChannel * g.banksPerRank;
    for (Addr i = 0; i < blocks_per_row_sweep; ++i) {
        DramLoc loc = m.decode(i * stride);
        EXPECT_EQ(loc.row, 0u);
        banks.insert({loc.channel, loc.rank, loc.bank});
    }
    EXPECT_EQ(banks.size(), blocks_per_row_sweep);
    EXPECT_EQ(m.decode(blocks_per_row_sweep * stride).row, 1u);
}

TEST(AddressMapper, ChannelBalanceUnderStreaming)
{
    DramGeometry g;
    AddressMapper m(g);
    std::vector<int> per_channel(g.channels, 0);
    for (Addr a = 0; a < 16 * MiB; a += 64)
        ++per_channel[m.decode(a).channel];
    EXPECT_EQ(per_channel[0], per_channel[1]);
}
