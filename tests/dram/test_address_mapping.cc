/**
 * @file
 * Unit and property tests for the address mapper.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "dram/address_mapping.hh"

using namespace dasdram;

class MappingRoundTrip : public ::testing::TestWithParam<MappingScheme>
{
};

TEST_P(MappingRoundTrip, EncodeDecodeIdentity)
{
    DramGeometry g;
    AddressMapper m(g, GetParam());
    for (Addr a : {Addr{0}, Addr{64}, Addr{8192}, Addr{123456 * 64},
                   Addr{g.capacityBytes() - 64}}) {
        DramLoc loc = m.decode(a);
        EXPECT_EQ(m.encode(loc), a) << "addr " << a;
    }
}

TEST_P(MappingRoundTrip, FieldsWithinBounds)
{
    DramGeometry g;
    AddressMapper m(g, GetParam());
    for (Addr a = 0; a < 64 * MiB; a += 64 * 1021) { // odd stride
        DramLoc loc = m.decode(a);
        EXPECT_LT(loc.channel, g.channels);
        EXPECT_LT(loc.rank, g.ranksPerChannel);
        EXPECT_LT(loc.bank, g.banksPerRank);
        EXPECT_LT(loc.row, g.rowsPerBank);
        EXPECT_LT(loc.column, g.linesPerRow());
    }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, MappingRoundTrip,
                         ::testing::Values(MappingScheme::RoRaBaChCo,
                                           MappingScheme::RoBaRaChCo,
                                           MappingScheme::ChRaBaRoCo));

TEST(AddressMapper, ContiguousRowIsOneDramRow)
{
    // With RoRaBaChCo, one 8 KB-aligned block maps to a single row of a
    // single bank — the property row-level migration relies on.
    DramGeometry g;
    AddressMapper m(g, MappingScheme::RoRaBaChCo);
    DramLoc first = m.decode(0);
    for (Addr a = 0; a < g.rowBytes; a += g.lineBytes) {
        DramLoc loc = m.decode(a);
        EXPECT_TRUE(loc.sameRow(first));
        EXPECT_EQ(loc.column, a / g.lineBytes);
    }
    // The next 8 KB block goes to a different channel (interleaving).
    DramLoc next = m.decode(g.rowBytes);
    EXPECT_NE(next.channel, first.channel);
}

TEST(AddressMapper, RowStrideCoversAllBanksBeforeNextRow)
{
    DramGeometry g;
    AddressMapper m(g, MappingScheme::RoRaBaChCo);
    std::set<std::tuple<unsigned, unsigned, unsigned>> banks;
    Addr stride = g.rowBytes;
    Addr blocks_per_row_sweep = static_cast<Addr>(g.channels) *
                                g.ranksPerChannel * g.banksPerRank;
    for (Addr i = 0; i < blocks_per_row_sweep; ++i) {
        DramLoc loc = m.decode(i * stride);
        EXPECT_EQ(loc.row, 0u);
        banks.insert({loc.channel, loc.rank, loc.bank});
    }
    EXPECT_EQ(banks.size(), blocks_per_row_sweep);
    EXPECT_EQ(m.decode(blocks_per_row_sweep * stride).row, 1u);
}

class MappingEdges : public ::testing::TestWithParam<MappingScheme>
{
};

TEST_P(MappingEdges, LocRoundTripAtAddressSpaceEdges)
{
    // encode∘decode identity at every corner of the coordinate space:
    // first/last channel, rank, bank, column, and rows chosen around
    // migration-group boundaries (group size 32) where off-by-one in
    // group indexing would surface. Catches truncated bit widths and
    // swapped field order.
    DramGeometry g;
    const unsigned group = 32;
    const std::uint64_t rows[] = {0,
                                  group - 1,
                                  group,
                                  g.rowsPerBank / 2 - 1,
                                  g.rowsPerBank - group,
                                  g.rowsPerBank - group - 1,
                                  g.rowsPerBank - 1};
    AddressMapper m(g, GetParam());
    for (unsigned ch : {0u, g.channels - 1}) {
        for (unsigned ra : {0u, g.ranksPerChannel - 1}) {
            for (unsigned ba : {0u, g.banksPerRank - 1}) {
                for (std::uint64_t row : rows) {
                    for (std::uint64_t col :
                         {std::uint64_t{0}, g.linesPerRow() - 1}) {
                        DramLoc loc;
                        loc.channel = ch;
                        loc.rank = ra;
                        loc.bank = ba;
                        loc.row = row;
                        loc.column = col;
                        Addr a = m.encode(loc);
                        ASSERT_LT(a, g.capacityBytes());
                        DramLoc back = m.decode(a);
                        EXPECT_TRUE(back.sameRow(loc))
                            << "ch" << ch << " ra" << ra << " ba" << ba
                            << " row " << row;
                        EXPECT_EQ(back.column, col);
                    }
                }
            }
        }
    }
}

TEST_P(MappingEdges, LastAddressDecodesToLastCoordinates)
{
    DramGeometry g;
    AddressMapper m(g, GetParam());
    DramLoc loc = m.decode(g.capacityBytes() - g.lineBytes);
    EXPECT_EQ(loc.row, g.rowsPerBank - 1);
    EXPECT_EQ(loc.channel, g.channels - 1);
    EXPECT_EQ(loc.rank, g.ranksPerChannel - 1);
    EXPECT_EQ(loc.bank, g.banksPerRank - 1);
    EXPECT_EQ(loc.column, g.linesPerRow() - 1);
}

TEST_P(MappingEdges, GlobalRowIdRoundTripAtEdges)
{
    // The mapper's DramLoc and the translation machinery's GlobalRowId
    // must agree at the extremes — the last global row belongs to the
    // last migration group, not one past it.
    DramGeometry g;
    GlobalRowId last = makeGlobalRowId(g, g.channels - 1,
                                       g.ranksPerChannel - 1,
                                       g.banksPerRank - 1,
                                       g.rowsPerBank - 1);
    EXPECT_EQ(last, g.totalRows() - 1);
    DramLoc loc = decodeGlobalRowId(g, last);
    EXPECT_EQ(loc.channel, g.channels - 1);
    EXPECT_EQ(loc.rank, g.ranksPerChannel - 1);
    EXPECT_EQ(loc.bank, g.banksPerRank - 1);
    EXPECT_EQ(loc.row, g.rowsPerBank - 1);

    AddressMapper m(g, GetParam());
    Addr a = m.encode(loc);
    DramLoc back = m.decode(a);
    EXPECT_TRUE(back.sameRow(loc));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, MappingEdges,
                         ::testing::Values(MappingScheme::RoRaBaChCo,
                                           MappingScheme::RoBaRaChCo,
                                           MappingScheme::ChRaBaRoCo));

TEST(AddressMapper, ChannelBalanceUnderStreaming)
{
    DramGeometry g;
    AddressMapper m(g);
    std::vector<int> per_channel(g.channels, 0);
    for (Addr a = 0; a < 16 * MiB; a += 64)
        ++per_channel[m.decode(a).channel];
    EXPECT_EQ(per_channel[0], per_channel[1]);
}
