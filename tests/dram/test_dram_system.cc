/**
 * @file
 * Tests for the multi-channel DRAM system wrapper: routing, clock
 * domain conversion, forwarding and energy accounting.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dram/cmd_trace.hh"
#include "dram/dram_system.hh"

using namespace dasdram;

namespace
{

struct SystemHarness
{
    SystemHarness()
        : timing(ddr3_1600Timing()), classifier(RowClass::Slow),
          dram(geom, timing, classifier)
    {
    }

    Cycle
    readLine(Addr addr, Cycle start = 0)
    {
        Cycle done = kCycleMax;
        auto req = std::make_unique<MemRequest>(addr, false, 0);
        req->loc = dram.decode(addr);
        req->onComplete = [&done](MemRequest &, Cycle at) { done = at; };
        dram.submit(std::move(req), start);
        for (Cycle t = start; t < start + 200000 && done == kCycleMax;
             t += kMemTick) {
            dram.tick(t);
        }
        return done;
    }

    DramGeometry geom;
    DramTiming timing;
    UniformRowClassifier classifier;
    DramSystem dram;
};

} // namespace

TEST(DramSystem, CompletionReportedInTicks)
{
    SystemHarness h;
    Cycle done = h.readLine(0x10000);
    ASSERT_NE(done, kCycleMax);
    EXPECT_EQ(done % kMemTick, 0u); // mem-cycle aligned
    // Roughly tRCD + tCL + tBL memory cycles.
    Cycle expect_mem =
        h.timing.slow.tRCD + h.timing.slow.tCL + h.timing.tBL;
    EXPECT_NEAR(static_cast<double>(done) / kMemTick,
                static_cast<double>(expect_mem), 4.0);
}

TEST(DramSystem, RoutesToCorrectChannel)
{
    SystemHarness h;
    // Find two addresses in different channels.
    Addr a0 = 0;
    Addr a1 = h.geom.rowBytes; // next 8 KB block → other channel
    ASSERT_NE(h.dram.decode(a0).channel, h.dram.decode(a1).channel);
    h.readLine(a0);
    h.readLine(a1, 100000 * kMemTick);
    EXPECT_EQ(h.dram.channel(0).readCount() +
                  h.dram.channel(1).readCount(),
              2u);
    EXPECT_EQ(h.dram.channel(0).readCount(), 1u);
}

TEST(DramSystem, WriteForwardingServesReadQuickly)
{
    SystemHarness h;
    Addr addr = 0x40000;
    auto wr = std::make_unique<MemRequest>(addr, true, 0);
    wr->loc = h.dram.decode(addr);
    h.dram.submit(std::move(wr), 0);

    Cycle done = kCycleMax;
    auto rd = std::make_unique<MemRequest>(addr, false, 0);
    rd->loc = h.dram.decode(addr);
    rd->onComplete = [&done](MemRequest &r, Cycle at) {
        done = at;
        EXPECT_EQ(r.location, ServiceLocation::RowBuffer);
    };
    h.dram.submit(std::move(rd), 0);
    // Forwarded synchronously: done already set without any tick.
    ASSERT_NE(done, kCycleMax);
    EXPECT_LE(done / kMemTick,
              h.timing.slow.tCL + h.timing.tBL + 1);
}

TEST(DramSystem, BusyReflectsOutstandingWork)
{
    SystemHarness h;
    EXPECT_FALSE(h.dram.busy());
    auto req = std::make_unique<MemRequest>(0x1000, false, 0);
    req->loc = h.dram.decode(0x1000);
    h.dram.submit(std::move(req), 0);
    EXPECT_TRUE(h.dram.busy());
}

TEST(DramSystem, NextWakeTickAdvancesWhenIdle)
{
    SystemHarness h;
    // Idle system: next wake is the first refresh.
    Cycle wake = h.dram.nextWakeTick(0);
    EXPECT_EQ(wake, h.timing.tREFI * kMemTick);
}

TEST(DramSystem, EnergyBreakdownCountsOperations)
{
    SystemHarness h;
    h.readLine(0x2000);
    EnergyBreakdown e = h.dram.energyBreakdown();
    EXPECT_EQ(e.reads, 1u);
    EXPECT_EQ(e.actsSlow, 1u);
    EXPECT_EQ(e.actsFast, 0u);
    EnergyParams p;
    EXPECT_GT(e.totalNj(p), 0.0);
    EXPECT_GT(e.perAccessNj(p), 0.0);
}

TEST(DramSystem, MigrationApiCompletesInTicks)
{
    SystemHarness h;
    Cycle done = 0;
    h.dram.startMigration(0, 0, 0, 3, 9, true, 0, 32,
                          [&done](Cycle at) { done = at; });
    for (Cycle t = 0; t < 100000 && done == 0; t += kMemTick)
        h.dram.tick(t);
    ASSERT_GT(done, 0u);
    EXPECT_GE(done / kMemTick, h.timing.swapCycles);
}

TEST(EnergyModel, FastActivationCheaper)
{
    EnergyParams p;
    EnergyBreakdown slow{1000, 0, 1000, 0, 0, 0};
    EnergyBreakdown fast{0, 1000, 1000, 0, 0, 0};
    EXPECT_LT(fast.totalNj(p), slow.totalNj(p));
}

namespace
{

/** Captures every command record in arrival order. */
class RecordingCommandSink : public CommandSink
{
  public:
    void onCommand(const CmdRecord &rec) override
    {
        records.push_back(rec);
    }
    std::vector<CmdRecord> records;
};

} // namespace

// Regression for the threaded trace-merge point: with channel
// threading, per-channel command records are buffered and merged back
// with a stable sort by cycle, so any external sink (Chrome trace,
// command trace, checker) must observe exactly the serial order —
// cycles non-decreasing, and equal-cycle records in channel index
// order (the serial loop visits channels in index order each cycle).
TEST(DramSystem, ThreadedCommandMergeIsStableSortedByCycle)
{
    DramGeometry geom;
    DramTiming timing = ddr3_1600Timing();
    UniformRowClassifier classifier(RowClass::Slow);
    DramSystem dram(geom, timing, classifier);
    RecordingCommandSink sink;
    dram.setCommandSink(&sink);
    dram.setChannelThreads(4);

    unsigned completed = 0;
    unsigned submitted = 0;
    Cycle t = 0;
    // A staggered burst across both channels and several banks keeps
    // multiple channels concurrently busy through the merge point.
    for (unsigned wave = 0; wave < 6; ++wave) {
        for (unsigned i = 0; i < 8; ++i) {
            Addr addr = (static_cast<Addr>(wave * 8 + i) * 0x4340) &
                        ~static_cast<Addr>(63);
            auto req = std::make_unique<MemRequest>(addr, false, 0);
            req->loc = dram.decode(addr);
            req->onComplete = [&completed](MemRequest &, Cycle) {
                ++completed;
            };
            if (!dram.canAccept(req->loc, false))
                continue;
            dram.submit(std::move(req), t);
            ++submitted;
        }
        for (unsigned c = 0; c < 40; ++c) {
            t += kMemTick;
            dram.tick(t);
        }
    }
    for (unsigned c = 0; c < 20000 && completed < submitted; ++c) {
        t += kMemTick;
        dram.tick(t);
    }
    ASSERT_GT(submitted, 0u);
    ASSERT_EQ(completed, submitted);
    ASSERT_GT(sink.records.size(), submitted); // ACT+RD at least

    for (std::size_t i = 1; i < sink.records.size(); ++i) {
        const CmdRecord &prev = sink.records[i - 1];
        const CmdRecord &cur = sink.records[i];
        ASSERT_LE(prev.cycle, cur.cycle)
            << "record " << i << " issued out of cycle order";
        if (prev.cycle == cur.cycle) {
            ASSERT_LE(prev.channel, cur.channel)
                << "equal-cycle records " << i - 1 << "," << i
                << " not in channel order (merge not stable)";
        }
    }
}
