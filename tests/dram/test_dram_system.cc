/**
 * @file
 * Tests for the multi-channel DRAM system wrapper: routing, clock
 * domain conversion, forwarding and energy accounting.
 */

#include <gtest/gtest.h>

#include <memory>

#include "dram/dram_system.hh"

using namespace dasdram;

namespace
{

struct SystemHarness
{
    SystemHarness()
        : timing(ddr3_1600Timing()), classifier(RowClass::Slow),
          dram(geom, timing, classifier)
    {
    }

    Cycle
    readLine(Addr addr, Cycle start = 0)
    {
        Cycle done = kCycleMax;
        auto req = std::make_unique<MemRequest>(addr, false, 0);
        req->loc = dram.decode(addr);
        req->onComplete = [&done](MemRequest &, Cycle at) { done = at; };
        dram.submit(std::move(req), start);
        for (Cycle t = start; t < start + 200000 && done == kCycleMax;
             t += kMemTick) {
            dram.tick(t);
        }
        return done;
    }

    DramGeometry geom;
    DramTiming timing;
    UniformRowClassifier classifier;
    DramSystem dram;
};

} // namespace

TEST(DramSystem, CompletionReportedInTicks)
{
    SystemHarness h;
    Cycle done = h.readLine(0x10000);
    ASSERT_NE(done, kCycleMax);
    EXPECT_EQ(done % kMemTick, 0u); // mem-cycle aligned
    // Roughly tRCD + tCL + tBL memory cycles.
    Cycle expect_mem =
        h.timing.slow.tRCD + h.timing.slow.tCL + h.timing.tBL;
    EXPECT_NEAR(static_cast<double>(done) / kMemTick,
                static_cast<double>(expect_mem), 4.0);
}

TEST(DramSystem, RoutesToCorrectChannel)
{
    SystemHarness h;
    // Find two addresses in different channels.
    Addr a0 = 0;
    Addr a1 = h.geom.rowBytes; // next 8 KB block → other channel
    ASSERT_NE(h.dram.decode(a0).channel, h.dram.decode(a1).channel);
    h.readLine(a0);
    h.readLine(a1, 100000 * kMemTick);
    EXPECT_EQ(h.dram.channel(0).readCount() +
                  h.dram.channel(1).readCount(),
              2u);
    EXPECT_EQ(h.dram.channel(0).readCount(), 1u);
}

TEST(DramSystem, WriteForwardingServesReadQuickly)
{
    SystemHarness h;
    Addr addr = 0x40000;
    auto wr = std::make_unique<MemRequest>(addr, true, 0);
    wr->loc = h.dram.decode(addr);
    h.dram.submit(std::move(wr), 0);

    Cycle done = kCycleMax;
    auto rd = std::make_unique<MemRequest>(addr, false, 0);
    rd->loc = h.dram.decode(addr);
    rd->onComplete = [&done](MemRequest &r, Cycle at) {
        done = at;
        EXPECT_EQ(r.location, ServiceLocation::RowBuffer);
    };
    h.dram.submit(std::move(rd), 0);
    // Forwarded synchronously: done already set without any tick.
    ASSERT_NE(done, kCycleMax);
    EXPECT_LE(done / kMemTick,
              h.timing.slow.tCL + h.timing.tBL + 1);
}

TEST(DramSystem, BusyReflectsOutstandingWork)
{
    SystemHarness h;
    EXPECT_FALSE(h.dram.busy());
    auto req = std::make_unique<MemRequest>(0x1000, false, 0);
    req->loc = h.dram.decode(0x1000);
    h.dram.submit(std::move(req), 0);
    EXPECT_TRUE(h.dram.busy());
}

TEST(DramSystem, NextWakeTickAdvancesWhenIdle)
{
    SystemHarness h;
    // Idle system: next wake is the first refresh.
    Cycle wake = h.dram.nextWakeTick(0);
    EXPECT_EQ(wake, h.timing.tREFI * kMemTick);
}

TEST(DramSystem, EnergyBreakdownCountsOperations)
{
    SystemHarness h;
    h.readLine(0x2000);
    EnergyBreakdown e = h.dram.energyBreakdown();
    EXPECT_EQ(e.reads, 1u);
    EXPECT_EQ(e.actsSlow, 1u);
    EXPECT_EQ(e.actsFast, 0u);
    EnergyParams p;
    EXPECT_GT(e.totalNj(p), 0.0);
    EXPECT_GT(e.perAccessNj(p), 0.0);
}

TEST(DramSystem, MigrationApiCompletesInTicks)
{
    SystemHarness h;
    Cycle done = 0;
    h.dram.startMigration(0, 0, 0, 3, 9, true, 0, 32,
                          [&done](Cycle at) { done = at; });
    for (Cycle t = 0; t < 100000 && done == 0; t += kMemTick)
        h.dram.tick(t);
    ASSERT_GT(done, 0u);
    EXPECT_GE(done / kMemTick, h.timing.swapCycles);
}

TEST(EnergyModel, FastActivationCheaper)
{
    EnergyParams p;
    EnergyBreakdown slow{1000, 0, 1000, 0, 0, 0};
    EnergyBreakdown fast{0, 1000, 1000, 0, 0, 0};
    EXPECT_LT(fast.totalNj(p), slow.totalNj(p));
}
