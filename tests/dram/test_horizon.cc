/**
 * @file
 * Horizon-tightness and readiness-cache tests for the channel
 * controller and the threaded DramSystem.
 *
 * Three layers:
 *  1. A property test: under randomized traffic, nextWakeCycle never
 *     overshoots the first cycle at which a per-cycle tick reference
 *     does observable work (command issued, read completion fired,
 *     migration finished), and a skip-driven run that only ticks at
 *     horizon cycles reproduces the per-cycle run byte-for-byte.
 *  2. Directed tests pinning the exact post-transition horizon for
 *     every readiness-cache invalidation edge: ACT, conflict PRE,
 *     refresh start/end, migration issue/complete (including
 *     reservation-exempt rows) and the row-class dependence.
 *  3. A DramSystem-level determinism test: identical command streams
 *     and completions across --channel-threads settings.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.hh"
#include "core/subarray_layout.hh"
#include "dram/controller.hh"
#include "dram/dram_system.hh"
#include "mem/clock.hh"

using namespace dasdram;

namespace
{

/** Buffers every record; equality-comparable via render(). */
struct RecordingSink : CommandSink
{
    std::vector<CmdRecord> records;
    void onCommand(const CmdRecord &rec) override
    {
        records.push_back(rec);
    }

    std::string
    render() const
    {
        std::ostringstream os;
        for (const CmdRecord &r : records) {
            os << r.cycle << ' ' << toString(r.cmd) << " ra" << r.rank
               << " ba" << r.bank << " row=" << r.row
               << " col=" << r.column
               << " cls=" << static_cast<int>(r.rowClass)
               << " id=" << r.migrationId << '\n';
        }
        return os.str();
    }
};

/** Pre-generated deterministic traffic, identical for both runs. */
struct Injection
{
    Cycle cycle = 0;
    bool isWrite = false;
    DramLoc loc;
};

struct MigInjection
{
    Cycle cycle = 0;
    unsigned rank = 0;
    unsigned bank = 0;
    std::uint64_t rowA = 0, rowB = 0, rowLo = 0, rowHi = 0;
    bool fullSwap = true;
};

struct Schedule
{
    std::vector<Injection> reqs;
    std::vector<MigInjection> migs;
    Cycle end = 0;
};

Schedule
makeSchedule(std::uint64_t seed, const DramGeometry &geom, unsigned nreqs,
             bool migrations)
{
    Rng rng(seed);
    Schedule s;
    const std::uint64_t columns = geom.rowBytes / geom.lineBytes;
    Cycle cy = 0;
    for (unsigned i = 0; i < nreqs; ++i) {
        cy += 1 + rng.nextBelow(25);
        Injection in;
        in.cycle = cy;
        in.isWrite = rng.chance(0.3);
        in.loc.channel = 0;
        in.loc.rank =
            static_cast<unsigned>(rng.nextBelow(geom.ranksPerChannel));
        in.loc.bank =
            static_cast<unsigned>(rng.nextBelow(geom.banksPerRank));
        in.loc.row = rng.nextBelow(96);
        in.loc.column = rng.nextBelow(columns);
        s.reqs.push_back(in);
        if (migrations && rng.chance(0.05)) {
            MigInjection m;
            m.cycle = cy + rng.nextBelow(10);
            m.rank = static_cast<unsigned>(
                rng.nextBelow(geom.ranksPerChannel));
            m.bank = static_cast<unsigned>(
                rng.nextBelow(geom.banksPerRank));
            std::uint64_t base = 32 * rng.nextBelow(3); // rows 0..95
            m.rowB = base + rng.nextBelow(4);           // fast slot
            m.rowA = base + 4 + rng.nextBelow(28);      // slow slot
            m.rowLo = base;
            m.rowHi = base + 32;
            m.fullSwap = rng.chance(0.7);
            s.migs.push_back(m);
        }
    }
    std::stable_sort(s.migs.begin(), s.migs.end(),
                     [](const MigInjection &a, const MigInjection &b) {
                         return a.cycle < b.cycle;
                     });
    s.end = cy + 150'000; // generous drain window (refresh + swaps)
    return s;
}

struct RunResult
{
    std::string trace;
    std::vector<std::pair<std::uint64_t, Cycle>> completions;
    std::vector<Cycle> migsDone;
    unsigned enqueued = 0;
    unsigned migsInjected = 0;
};

/**
 * Drive @p sched through one ChannelController. With @p skip false,
 * every memory cycle is ticked (the per-cycle reference) and the
 * horizon-tightness property is asserted; with @p skip true, only
 * cycles at or past the previously returned horizon are ticked.
 */
RunResult
runSchedule(const Schedule &sched, const ControllerConfig &cfg,
            const RowClassifier &cls, const DramGeometry &geom,
            const DramTiming &timing, bool skip)
{
    ChannelController ctrl(0, geom, timing, cls, cfg);
    RecordingSink sink;
    ctrl.setCommandSink(&sink);

    RunResult res;
    std::size_t ri = 0, mi = 0;
    std::uint64_t next_id = 1;
    Cycle next_wake = 1;
    Cycle max_pending = 0; // max horizon issued since last activity

    for (Cycle now = 1; now <= sched.end; ++now) {
        bool injected = false;
        while (ri < sched.reqs.size() && sched.reqs[ri].cycle <= now) {
            const Injection &in = sched.reqs[ri++];
            if (!ctrl.canAccept(in.isWrite))
                continue;
            auto req = std::make_unique<MemRequest>();
            req->id = next_id++;
            req->addr = static_cast<Addr>(req->id) * geom.lineBytes;
            req->isWrite = in.isWrite;
            req->loc = in.loc;
            const std::uint64_t id = req->id;
            req->onComplete = [&res, id](MemRequest &, Cycle at) {
                res.completions.emplace_back(id, at);
            };
            ctrl.enqueue(std::move(req), now);
            ++res.enqueued;
            injected = true;
        }
        while (mi < sched.migs.size() && sched.migs[mi].cycle <= now) {
            const MigInjection &m = sched.migs[mi++];
            MigrationJob job;
            job.rank = m.rank;
            job.bank = m.bank;
            job.rowA = m.rowA;
            job.rowB = m.rowB;
            job.fullSwap = m.fullSwap;
            job.rowLo = m.rowLo;
            job.rowHi = m.rowHi;
            job.onDone = [&res](Cycle at) { res.migsDone.push_back(at); };
            ctrl.addMigration(std::move(job));
            ++res.migsInjected;
            injected = true;
        }
        if (injected) {
            // External input: horizons computed before it cannot bound
            // what the new work does, and the skip run must re-probe.
            next_wake = now;
            max_pending = 0;
        }
        if (skip && now < next_wake)
            continue;

        const std::size_t cmds0 = sink.records.size();
        const std::size_t comp0 = res.completions.size();
        const std::size_t migs0 = res.migsDone.size();
        ctrl.tick(now);
        const bool activity = sink.records.size() != cmds0 ||
                              res.completions.size() != comp0 ||
                              res.migsDone.size() != migs0;
        if (!skip && activity) {
            EXPECT_LE(max_pending, now)
                << "nextWakeCycle overshot: a horizon claimed nothing "
                   "would happen before cycle "
                << max_pending << " but tick(" << now << ") did work";
            max_pending = 0;
        }
        const Cycle h = ctrl.nextWakeCycle(now);
        next_wake = std::max(now + 1, h);
        if (!skip)
            max_pending = std::max(max_pending, h);
    }

    res.trace = sink.render();
    return res;
}

/** One property-test corner: config mutator + classifier choice. */
struct HorizonCorner
{
    const char *name;
    bool heterogeneous; ///< AsymmetricLayout vs uniform slow
    bool migrations;
    void (*apply)(ControllerConfig &);
};

const HorizonCorner kCorners[] = {
    {"open_frfcfs", true, true, [](ControllerConfig &) {}},
    {"closed_page", true, true,
     [](ControllerConfig &c) { c.page = PagePolicy::Closed; }},
    {"fcfs_tiny_queues", false, true,
     [](ControllerConfig &c) {
         c.sched = SchedPolicy::Fcfs;
         c.readQueueDepth = 4;
         c.writeQueueDepth = 4;
         c.writeHighWatermark = 3;
         c.writeLowWatermark = 1;
     }},
    {"no_refresh_defer0", true, true,
     [](ControllerConfig &c) {
         c.refreshEnabled = false;
         c.migrationMaxDefer = 0;
     }},
};

class HorizonProperty : public ::testing::TestWithParam<HorizonCorner>
{
};

std::string
cornerName(const ::testing::TestParamInfo<HorizonCorner> &info)
{
    return info.param.name;
}

} // namespace

/**
 * The tentpole property: the reference run asserts no horizon ever
 * overshoots the next observable work, and the skip-driven run —
 * which trusts the horizons to elide every other cycle — reproduces
 * the reference command stream, completion times and migration
 * finishes exactly.
 */
TEST_P(HorizonProperty, SkipDrivenRunMatchesPerCycleReference)
{
    const HorizonCorner &corner = GetParam();
    DramGeometry geom;
    const DramTiming timing = ddr3_1600Timing();
    LayoutConfig lcfg;
    AsymmetricLayout layout(geom, lcfg);
    UniformRowClassifier slow(RowClass::Slow);
    const RowClassifier &cls =
        corner.heterogeneous ? static_cast<const RowClassifier &>(layout)
                             : static_cast<const RowClassifier &>(slow);

    ControllerConfig cfg;
    corner.apply(cfg);
    const Schedule sched =
        makeSchedule(0xda5d0 + 17, geom, 220, corner.migrations);

    RunResult ref = runSchedule(sched, cfg, cls, geom, timing, false);
    RunResult fast = runSchedule(sched, cfg, cls, geom, timing, true);

    EXPECT_GT(ref.enqueued, 0u);
    EXPECT_EQ(ref.completions.size(), ref.enqueued)
        << "reference run did not drain";
    EXPECT_EQ(ref.migsDone.size(), ref.migsInjected);

    EXPECT_EQ(ref.enqueued, fast.enqueued);
    EXPECT_EQ(ref.completions, fast.completions);
    EXPECT_EQ(ref.migsDone, fast.migsDone);
    if (ref.trace != fast.trace) {
        // Readable first-divergence report instead of a full dump.
        std::istringstream a(ref.trace), b(fast.trace);
        std::string la, lb;
        std::size_t line = 0;
        while (true) {
            ++line;
            const bool ha = static_cast<bool>(std::getline(a, la));
            const bool hb = static_cast<bool>(std::getline(b, lb));
            if (!ha && !hb)
                break;
            ASSERT_TRUE(ha == hb && la == lb)
                << "trace divergence at line " << line << "\n  per-cycle: "
                << (ha ? la : "<eof>") << "\n  skip-driven: "
                << (hb ? lb : "<eof>");
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Corners, HorizonProperty,
                         ::testing::ValuesIn(kCorners), cornerName);

namespace
{

/** Single-request directed harness with no refresh interference. */
struct DirectedHarness
{
    explicit DirectedHarness(bool refresh = false,
                             const RowClassifier *classifier = nullptr)
        : timing(ddr3_1600Timing()), slowCls(RowClass::Slow)
    {
        // One rank: directed expectations then see a single refresh
        // schedule and no tRRD/tFAW cross-talk.
        geom.ranksPerChannel = 1;
        cfg.refreshEnabled = refresh;
        cfg.migrationMaxDefer = 0;
        ctrl = std::make_unique<ChannelController>(
            0, geom, timing, classifier ? *classifier : slowCls, cfg);
        ctrl->setCommandSink(&sink);
    }

    void
    enqueueRead(std::uint64_t row, Cycle now, unsigned bank = 0)
    {
        auto req = std::make_unique<MemRequest>();
        req->id = nextId++;
        req->addr = static_cast<Addr>(req->id) * geom.lineBytes;
        req->loc.channel = 0;
        req->loc.rank = 0;
        req->loc.bank = bank;
        req->loc.row = row;
        const std::uint64_t id = req->id;
        req->onComplete = [this, id](MemRequest &, Cycle at) {
            completions.emplace_back(id, at);
        };
        ctrl->enqueue(std::move(req), now);
    }

    /** Skip-step through horizons until @p stop (inclusive). */
    void
    runTo(Cycle stop, Cycle from = 1)
    {
        Cycle now = from;
        while (now <= stop) {
            ctrl->tick(now);
            const Cycle w =
                std::max(now + 1, ctrl->nextWakeCycle(now));
            if (w > stop)
                break;
            now = w;
        }
    }

    /** Issue cycle of the @p n-th command of kind @p cmd (1-based). */
    Cycle
    cmdCycle(DramCommand cmd, unsigned n = 1) const
    {
        for (const CmdRecord &r : sink.records) {
            if (r.cmd == cmd && --n == 0)
                return r.cycle;
        }
        return kCycleMax;
    }

    DramGeometry geom;
    DramTiming timing;
    UniformRowClassifier slowCls;
    ControllerConfig cfg;
    RecordingSink sink;
    std::unique_ptr<ChannelController> ctrl;
    std::vector<std::pair<std::uint64_t, Cycle>> completions;
    std::uint64_t nextId = 1;
};

} // namespace

/**
 * ACT edge: issuing the ACT must invalidate the request's cached ready
 * cycle — the horizon moves from "ACT next cycle" to the column window
 * opened by that ACT. A stale cache would keep reporting now + 1.
 */
TEST(ReadinessCache, ActMovesHorizonToColumnWindow)
{
    DirectedHarness h;
    h.enqueueRead(5, 0);
    EXPECT_EQ(h.ctrl->nextWakeCycle(0), 1u); // ACT issuable next cycle

    h.ctrl->tick(1);
    ASSERT_EQ(h.cmdCycle(DramCommand::ACT), 1u);
    const Cycle rd_at = 1 + h.timing.slow.tRCD;
    EXPECT_EQ(h.ctrl->nextWakeCycle(1), rd_at);

    // The skip-stepped RD must land exactly on the tRCD boundary, and
    // the post-RD horizon is the data-burst completion.
    h.runTo(rd_at, 2);
    ASSERT_EQ(h.cmdCycle(DramCommand::RD), rd_at);
    const Cycle done = rd_at + h.timing.slow.tCL + h.timing.tBL;
    EXPECT_EQ(h.ctrl->nextWakeCycle(rd_at), done);
    h.runTo(done, rd_at + 1);
    ASSERT_EQ(h.completions.size(), 1u);
    EXPECT_EQ(h.completions[0].second, done);
}

/**
 * PRE edge: a row conflict must wait for max(tRAS after the ACT, tRTP
 * after the RD); the whole PRE → ACT → RD ladder then lands on the
 * exact cycles the timing derives, under skip-stepping only.
 */
TEST(ReadinessCache, ConflictPrechargeLadderIsExact)
{
    DirectedHarness h;
    h.enqueueRead(5, 0);
    h.runTo(1, 1);
    const Cycle act1 = h.cmdCycle(DramCommand::ACT);
    ASSERT_EQ(act1, 1u);
    const Cycle rd1 = act1 + h.timing.slow.tRCD;
    h.runTo(rd1, act1 + 1);
    ASSERT_EQ(h.cmdCycle(DramCommand::RD), rd1);

    // Conflicting row in the same bank: PRE at max(tRAS, RD + tRTP).
    h.enqueueRead(9, rd1 + 1);
    const Cycle pre_expect =
        std::max(act1 + h.timing.slow.tRAS, rd1 + h.timing.tRTP);
    const Cycle act2_expect =
        std::max({pre_expect + 1, act1 + h.timing.slow.tRC,
                  pre_expect + h.timing.slow.tRP});
    const Cycle rd2_expect = act2_expect + h.timing.slow.tRCD;
    h.runTo(rd2_expect + h.timing.slow.tCL + h.timing.tBL, rd1 + 1);

    EXPECT_EQ(h.cmdCycle(DramCommand::PRE), pre_expect);
    EXPECT_EQ(h.cmdCycle(DramCommand::ACT, 2), act2_expect);
    EXPECT_EQ(h.cmdCycle(DramCommand::RD, 2), rd2_expect);
    ASSERT_EQ(h.completions.size(), 2u);
    EXPECT_EQ(h.completions[1].second,
              rd2_expect + h.timing.slow.tCL + h.timing.tBL);
}

/**
 * Refresh start/end edges: an idle channel's horizon is exactly the
 * scheduled refresh; a request arriving mid-tRFC activates exactly
 * when the refresh window closes.
 */
TEST(ReadinessCache, RefreshWindowGatesActivation)
{
    DirectedHarness h(/*refresh=*/true);
    EXPECT_EQ(h.ctrl->nextWakeCycle(0), h.timing.tREFI);

    h.runTo(h.timing.tREFI, 1);
    const Cycle ref_at = h.cmdCycle(DramCommand::REF);
    ASSERT_EQ(ref_at, h.timing.tREFI);

    // REF end: the ACT for a request arriving inside the window waits
    // for now + tRFC exactly.
    h.enqueueRead(5, ref_at + 1);
    EXPECT_EQ(h.ctrl->nextWakeCycle(ref_at + 1), ref_at + h.timing.tRFC);
    h.runTo(ref_at + h.timing.tRFC + h.timing.slow.tRCD, ref_at + 1);
    EXPECT_EQ(h.cmdCycle(DramCommand::ACT), ref_at + h.timing.tRFC);
}

/**
 * Migration issue/complete edges, including reservation-exempt rows:
 * a blocked row's horizon is the reservation end; the two rows being
 * swapped stay serviceable mid-migration.
 */
TEST(ReadinessCache, MigrationReservationBlocksAllButExemptRows)
{
    DirectedHarness h;
    MigrationJob job;
    job.rank = 0;
    job.bank = 0;
    job.rowA = 40;
    job.rowB = 2;
    job.fullSwap = true;
    job.rowLo = 0;
    job.rowHi = 64;
    Cycle mig_done = 0;
    job.onDone = [&mig_done](Cycle at) { mig_done = at; };
    h.ctrl->addMigration(std::move(job));

    h.ctrl->tick(1);
    ASSERT_EQ(h.cmdCycle(DramCommand::MIGRATE), 1u);
    const Cycle res_end = 1 + h.timing.swapCycles;
    EXPECT_EQ(h.ctrl->nextWakeCycle(1), res_end); // completion event

    // Blocked row inside [0, 64): horizon is the reservation end.
    h.enqueueRead(10, 2);
    EXPECT_EQ(h.ctrl->nextWakeCycle(2), res_end);

    // Exempt row (one of the two being swapped): issuable immediately.
    h.enqueueRead(40, 3);
    EXPECT_EQ(h.ctrl->nextWakeCycle(3), 4u);

    h.runTo(res_end + h.timing.slow.tRC + 2 * h.timing.slow.tRCD +
                h.timing.slow.tCL + h.timing.tBL,
            4);
    ASSERT_EQ(h.completions.size(), 2u);
    // The exempt row completed inside the reservation window...
    EXPECT_EQ(h.completions[0].first, 2u);
    EXPECT_LT(h.completions[0].second, res_end);
    // ...the blocked row only after it, and the job finished on time.
    EXPECT_EQ(h.completions[1].first, 1u);
    EXPECT_GT(h.completions[1].second, res_end);
    EXPECT_EQ(mig_done, res_end);
}

/**
 * Row-class edge: the cached column window must track the class of the
 * activated row — fast rows open tRCD_fast after the ACT, slow rows
 * tRCD_slow, under the same asymmetric layout.
 */
TEST(ReadinessCache, RowClassSelectsColumnWindow)
{
    DramGeometry geom;
    LayoutConfig lcfg;
    AsymmetricLayout layout(geom, lcfg);

    ASSERT_TRUE(layout.classify(0, 0, 0, 0) == RowClass::Fast);
    ASSERT_TRUE(layout.classify(0, 0, 0, 5) == RowClass::Slow);

    DirectedHarness fast(false, &layout);
    fast.enqueueRead(0, 0); // fast slot
    fast.ctrl->tick(1);
    EXPECT_EQ(fast.ctrl->nextWakeCycle(1), 1 + fast.timing.fast.tRCD);

    DirectedHarness slow(false, &layout);
    slow.enqueueRead(5, 0); // slow slot
    slow.ctrl->tick(1);
    EXPECT_EQ(slow.ctrl->nextWakeCycle(1), 1 + slow.timing.slow.tRCD);
}

namespace
{

/** Run randomized two-channel traffic on a DramSystem. */
RunResult
runThreadedSystem(unsigned threads, std::uint64_t seed)
{
    DramGeometry geom; // 2 channels by default
    const DramTiming timing = ddr3_1600Timing();
    UniformRowClassifier cls(RowClass::Slow);
    DramSystem dram(geom, timing, cls, {});
    RecordingSink sink;
    dram.setCommandSink(&sink);
    dram.setChannelThreads(threads);

    RunResult res;
    Rng rng(seed);
    std::uint64_t next_id = 1;
    const std::uint64_t columns = geom.rowBytes / geom.lineBytes;
    unsigned submitted = 0;
    const unsigned total = 300;

    for (Cycle mem = 0; mem < 400'000; ++mem) {
        const Cycle now_tick = mem * kMemTick;
        unsigned burst = static_cast<unsigned>(rng.nextBelow(3));
        for (unsigned i = 0; i < burst && submitted < total; ++i) {
            auto req = std::make_unique<MemRequest>();
            req->id = next_id++;
            req->isWrite = rng.chance(0.2);
            req->loc.channel =
                static_cast<unsigned>(rng.nextBelow(geom.channels));
            req->loc.rank = static_cast<unsigned>(
                rng.nextBelow(geom.ranksPerChannel));
            req->loc.bank = static_cast<unsigned>(
                rng.nextBelow(geom.banksPerRank));
            req->loc.row = rng.nextBelow(64);
            req->loc.column = rng.nextBelow(columns);
            req->addr = dram.mapper().encode(req->loc);
            const std::uint64_t id = req->id;
            req->onComplete = [&res, id](MemRequest &, Cycle at) {
                res.completions.emplace_back(id, at);
            };
            if (!dram.canAccept(req->loc, req->isWrite))
                break;
            dram.submit(std::move(req), now_tick);
            ++submitted;
            ++res.enqueued;
        }
        if (submitted < total && rng.chance(0.01)) {
            unsigned ch = static_cast<unsigned>(
                rng.nextBelow(geom.channels));
            dram.startMigration(
                ch, 0, 0, 40, 2, true, 0, 64,
                [&res](Cycle at) { res.migsDone.push_back(at); });
            ++res.migsInjected;
        }
        dram.tick(now_tick);
        if (submitted >= total && res.completions.size() >= submitted &&
            res.migsDone.size() >= res.migsInjected && !dram.busy()) {
            break;
        }
    }
    res.trace = sink.render();
    return res;
}

} // namespace

/**
 * The determinism contract of --channel-threads: every thread count
 * yields the identical command stream (order included), completion
 * times and migration finishes.
 */
TEST(ChannelThreads, BitIdenticalAcrossThreadCounts)
{
    const RunResult serial = runThreadedSystem(1, 2024);
    EXPECT_GT(serial.enqueued, 0u);
    EXPECT_EQ(serial.completions.size(), serial.enqueued);

    for (unsigned threads : {2u, 4u}) {
        const RunResult par = runThreadedSystem(threads, 2024);
        EXPECT_EQ(serial.trace, par.trace) << "threads=" << threads;
        EXPECT_EQ(serial.completions, par.completions)
            << "threads=" << threads;
        EXPECT_EQ(serial.migsDone, par.migsDone)
            << "threads=" << threads;
    }
}

/** setChannelThreads clamps to the channel count and back to serial. */
TEST(ChannelThreads, ClampAndReconfigure)
{
    DramGeometry geom;
    const DramTiming timing = ddr3_1600Timing();
    UniformRowClassifier cls(RowClass::Slow);
    DramSystem dram(geom, timing, cls, {});
    EXPECT_EQ(dram.channelThreads(), 1u);
    dram.setChannelThreads(64);
    EXPECT_EQ(dram.channelThreads(), geom.channels);
    dram.setChannelThreads(0);
    EXPECT_EQ(dram.channelThreads(), 1u);
}

/** nextWakeMemCycle is the mem-cycle primitive behind nextWakeTick. */
TEST(ChannelThreads, NextWakeMemCycleMatchesTickDomain)
{
    DramGeometry geom;
    const DramTiming timing = ddr3_1600Timing();
    UniformRowClassifier cls(RowClass::Slow);
    DramSystem dram(geom, timing, cls, {});
    EXPECT_EQ(dram.nextWakeMemCycle(0), timing.tREFI);
    EXPECT_EQ(dram.nextWakeTick(0), timing.tREFI * kMemTick);
}
