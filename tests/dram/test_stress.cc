/**
 * @file
 * Randomised stress tests. The bank/rank state machines panic on any
 * timing-protocol violation, so driving the controller with random
 * traffic (plus random migrations and refreshes) is a protocol fuzz
 * test: the assertions are "everything completes" and "nothing
 * violates DDR3 timing".
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/random.hh"
#include "core/subarray_layout.hh"
#include "dram/dram_system.hh"

using namespace dasdram;

namespace
{

struct StressParams
{
    unsigned requests;
    unsigned bankSpread;  ///< distinct banks touched
    unsigned rowSpread;   ///< distinct rows per bank
    double writeFraction;
    bool migrations;
    std::uint64_t seed;
};

class DramStress : public ::testing::TestWithParam<StressParams>
{
};

} // namespace

TEST_P(DramStress, AllRequestsCompleteWithoutProtocolViolations)
{
    const StressParams p = GetParam();
    DramGeometry geom;
    DramTiming timing = ddr3_1600Timing();
    AsymmetricLayout layout(geom, {});
    DramSystem dram(geom, timing, layout);
    Rng rng(p.seed);

    unsigned completed = 0;
    unsigned submitted = 0;
    unsigned migrations_done = 0;
    unsigned migrations_started = 0;
    Cycle now = 0;

    while (submitted < p.requests) {
        // Random request into a bounded bank/row region.
        DramLoc loc;
        loc.channel = static_cast<unsigned>(rng.nextBelow(geom.channels));
        loc.rank = static_cast<unsigned>(
            rng.nextBelow(geom.ranksPerChannel));
        loc.bank = static_cast<unsigned>(
            rng.nextBelow(std::min(p.bankSpread, geom.banksPerRank)));
        loc.row = rng.nextBelow(p.rowSpread);
        loc.column = rng.nextBelow(geom.linesPerRow());
        bool write = rng.chance(p.writeFraction);
        if (dram.canAccept(loc, write)) {
            auto req = std::make_unique<MemRequest>(
                dram.mapper().encode(loc), write, 0);
            req->loc = loc;
            req->onComplete = [&completed](MemRequest &, Cycle) {
                ++completed;
            };
            dram.submit(std::move(req), now);
            ++submitted;
        }
        if (p.migrations && rng.chance(0.02) &&
            migrations_started < 200) {
            std::uint64_t group = rng.nextBelow(p.rowSpread / 32);
            std::uint64_t lo = group * 32;
            ++migrations_started;
            dram.startMigration(
                static_cast<unsigned>(rng.nextBelow(geom.channels)),
                static_cast<unsigned>(
                    rng.nextBelow(geom.ranksPerChannel)),
                static_cast<unsigned>(rng.nextBelow(p.bankSpread)),
                lo + rng.nextBelow(32), lo + rng.nextBelow(4), true, lo,
                lo + 32,
                [&migrations_done](Cycle) { ++migrations_done; });
        }
        now += kMemTick * (1 + rng.nextBelow(3));
        dram.tick(now);
    }

    // Drain.
    Cycle deadline = now + 4'000'000;
    while ((completed < submitted ||
            migrations_done < migrations_started) &&
           now < deadline) {
        now += kMemTick;
        dram.tick(now);
    }
    EXPECT_EQ(completed, submitted);
    EXPECT_EQ(migrations_done, migrations_started);
    EXPECT_FALSE(dram.busy());

    // Sanity on the operation counts.
    EnergyBreakdown e = dram.energyBreakdown();
    EXPECT_EQ(e.reads + e.writes, submitted);
    EXPECT_EQ(e.swaps, migrations_done);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, DramStress,
    ::testing::Values(
        // Row-buffer friendly single-bank hammer.
        StressParams{2000, 1, 4, 0.0, false, 1},
        // Bank-parallel random reads.
        StressParams{3000, 8, 1024, 0.0, false, 2},
        // Read/write mix with turnarounds.
        StressParams{3000, 8, 256, 0.4, false, 3},
        // Everything plus concurrent migrations.
        StressParams{4000, 8, 512, 0.3, true, 4},
        // Write-dominated drain behaviour.
        StressParams{2000, 4, 128, 0.9, true, 5}));

TEST(DramStressRefresh, LongIdleWithPeriodicTrafficRefreshes)
{
    DramGeometry geom;
    DramTiming timing = ddr3_1600Timing();
    UniformRowClassifier cls(RowClass::Slow);
    DramSystem dram(geom, timing, cls);

    unsigned completed = 0;
    Cycle now = 0;
    // Sparse traffic over many refresh intervals.
    for (int burst = 0; burst < 12; ++burst) {
        DramLoc loc{0, 0, 0, static_cast<std::uint64_t>(burst), 0};
        auto req = std::make_unique<MemRequest>(
            dram.mapper().encode(loc), false, 0);
        req->loc = loc;
        req->onComplete = [&completed](MemRequest &, Cycle) {
            ++completed;
        };
        dram.submit(std::move(req), now);
        now += timing.tREFI * kMemTick; // one refresh interval apart
        dram.tick(now);
    }
    EXPECT_EQ(completed, 12u);
    // Both ranks of channel 0 kept refreshing throughout.
    EXPECT_GE(dram.channel(0).rank(0).refreshCount(), 10u);
    EXPECT_GE(dram.channel(0).rank(1).refreshCount(), 10u);
}
