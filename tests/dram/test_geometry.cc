/**
 * @file
 * Unit tests for DRAM geometry and global row ids.
 */

#include <gtest/gtest.h>

#include <set>

#include "dram/geometry.hh"

using namespace dasdram;

TEST(Geometry, Table1Defaults)
{
    DramGeometry g;
    EXPECT_EQ(g.capacityBytes(), 8 * GiB);
    EXPECT_EQ(g.totalRows(), 1024ULL * 1024);
    EXPECT_EQ(g.totalBanks(), 32u);
    EXPECT_EQ(g.linesPerRow(), 128u);
    EXPECT_TRUE(g.valid());
}

TEST(Geometry, InvalidWhenNotPowerOfTwo)
{
    DramGeometry g;
    g.rowsPerBank = 1000; // not a power of two
    EXPECT_FALSE(g.valid());
}

TEST(GlobalRowId, RoundTrip)
{
    DramGeometry g;
    for (unsigned ch = 0; ch < g.channels; ++ch) {
        for (unsigned ra = 0; ra < g.ranksPerChannel; ++ra) {
            for (unsigned ba = 0; ba < g.banksPerRank; ba += 3) {
                for (std::uint64_t row : {0ULL, 1ULL, 31ULL, 32767ULL}) {
                    GlobalRowId id = makeGlobalRowId(g, ch, ra, ba, row);
                    DramLoc loc = decodeGlobalRowId(g, id);
                    EXPECT_EQ(loc.channel, ch);
                    EXPECT_EQ(loc.rank, ra);
                    EXPECT_EQ(loc.bank, ba);
                    EXPECT_EQ(loc.row, row);
                }
            }
        }
    }
}

TEST(GlobalRowId, DenseAndUnique)
{
    DramGeometry g;
    g.rowsPerBank = 8;
    g.channels = 2;
    g.ranksPerChannel = 2;
    g.banksPerRank = 2;
    std::set<GlobalRowId> seen;
    for (unsigned ch = 0; ch < 2; ++ch)
        for (unsigned ra = 0; ra < 2; ++ra)
            for (unsigned ba = 0; ba < 2; ++ba)
                for (std::uint64_t row = 0; row < 8; ++row)
                    seen.insert(makeGlobalRowId(g, ch, ra, ba, row));
    EXPECT_EQ(seen.size(), 2u * 2 * 2 * 8);
    EXPECT_EQ(*seen.rbegin(), 2u * 2 * 2 * 8 - 1); // dense 0..N-1
}

TEST(DramLoc, SameBankAndRow)
{
    DramLoc a{0, 1, 2, 10, 3};
    DramLoc b{0, 1, 2, 10, 7};
    DramLoc c{0, 1, 2, 11, 3};
    DramLoc d{1, 1, 2, 10, 3};
    EXPECT_TRUE(a.sameBank(b));
    EXPECT_TRUE(a.sameRow(b));
    EXPECT_TRUE(a.sameBank(c));
    EXPECT_FALSE(a.sameRow(c));
    EXPECT_FALSE(a.sameBank(d));
}
