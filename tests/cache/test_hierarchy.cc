/**
 * @file
 * Tests for the three-level cache hierarchy: latency levels, promotion
 * on hits, writeback cascades and the LLC side path for table walks.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/hierarchy.hh"

using namespace dasdram;

namespace
{

HierarchyConfig
smallConfig()
{
    HierarchyConfig cfg;
    cfg.l1 = {1 * KiB, 2, 64};
    cfg.l2 = {4 * KiB, 4, 64};
    cfg.llc = {16 * KiB, 8, 64};
    return cfg;
}

} // namespace

TEST(Hierarchy, MissThenFillThenL1Hit)
{
    CacheHierarchy h(1, smallConfig());
    std::vector<Addr> wbs;
    auto sink = [&](Addr a) { wbs.push_back(a); };
    CacheAccessResult r = h.access(0, 0x1000, false, sink);
    EXPECT_EQ(r.level, HitLevel::Miss);
    EXPECT_EQ(r.latencyTicks, cpuCyclesToTicks(20));
    h.fill(0, r.lineAddr, false, sink);
    r = h.access(0, 0x1000, false, sink);
    EXPECT_EQ(r.level, HitLevel::L1);
    EXPECT_EQ(r.latencyTicks, cpuCyclesToTicks(4));
    EXPECT_TRUE(wbs.empty());
}

TEST(Hierarchy, L2HitPromotesToL1)
{
    CacheHierarchy h(1, smallConfig());
    auto sink = [](Addr) {};
    h.fill(0, 0x1000, false, sink);
    // Evict 0x1000 from tiny L1 with conflicting fills.
    for (Addr a = 0; a < 4 * KiB; a += 64)
        h.l1(0).insert(a, false);
    EXPECT_FALSE(h.l1(0).probe(0x1000));
    CacheAccessResult r = h.access(0, 0x1000, false, sink);
    EXPECT_EQ(r.level, HitLevel::L2);
    EXPECT_TRUE(h.l1(0).probe(0x1000)); // promoted back
}

TEST(Hierarchy, DirtyLineWritebackReachesSink)
{
    CacheHierarchy h(1, smallConfig());
    std::vector<Addr> wbs;
    auto sink = [&](Addr a) { wbs.push_back(a); };
    // Dirty one line in L1 (write-allocate fill).
    h.fill(0, 0x100000, true, sink);
    // Fill far more distinct lines than the LLC holds: the dirty line
    // cascades L1 → L2 → LLC → sink.
    for (Addr a = 0; a < 64 * KiB; a += 64)
        h.fill(0, a, false, sink);
    bool found = false;
    for (Addr a : wbs)
        found = found || a == 0x100000;
    EXPECT_TRUE(found);
}

TEST(Hierarchy, CoresHavePrivateL1L2)
{
    CacheHierarchy h(2, smallConfig());
    auto sink = [](Addr) {};
    h.fill(0, 0x3000, false, sink);
    EXPECT_EQ(h.access(0, 0x3000, false, sink).level, HitLevel::L1);
    // Core 1 misses its private levels but hits the shared LLC.
    CacheAccessResult r = h.access(1, 0x3000, false, sink);
    EXPECT_EQ(r.level, HitLevel::LLC);
}

TEST(Hierarchy, LlcSidePathForTableLines)
{
    CacheHierarchy h(1, smallConfig());
    auto sink = [](Addr) {};
    Addr table_line = 0x7000;
    EXPECT_FALSE(h.llcSideAccess(table_line));
    h.fillLlcOnly(table_line, sink);
    EXPECT_TRUE(h.llcSideAccess(table_line));
    // Side fills do not touch L1/L2.
    EXPECT_FALSE(h.l1(0).probe(table_line));
    EXPECT_FALSE(h.l2(0).probe(table_line));
}

TEST(Hierarchy, DemandMissCounterTracksMissesOnly)
{
    CacheHierarchy h(1, smallConfig());
    auto sink = [](Addr) {};
    h.access(0, 0x100, false, sink);
    h.fill(0, 0x100, false, sink);
    h.access(0, 0x100, false, sink);
    EXPECT_EQ(h.demandLlcMisses(), 1u);
}

TEST(Hierarchy, Table1DefaultGeometry)
{
    HierarchyConfig cfg;
    EXPECT_EQ(cfg.l1.sizeBytes, 64 * KiB);
    EXPECT_EQ(cfg.l2.sizeBytes, 256 * KiB);
    EXPECT_EQ(cfg.llc.sizeBytes, 4 * MiB);
    EXPECT_EQ(cfg.l1LatencyCpu, 4u);
    EXPECT_EQ(cfg.l2LatencyCpu, 12u);
    EXPECT_EQ(cfg.llcLatencyCpu, 20u);
}
