/**
 * @file
 * Unit tests for the MSHR file.
 */

#include <gtest/gtest.h>

#include "cache/mshr.hh"

using namespace dasdram;

TEST(Mshr, AllocateAndComplete)
{
    MshrFile m(4);
    EXPECT_FALSE(m.outstanding(0x100));
    m.allocate(0x100);
    EXPECT_TRUE(m.outstanding(0x100));
    int fired = 0;
    m.setDispatcher([&](const Continuation &c, Addr line, Cycle at) {
        EXPECT_EQ(c.kind, Continuation::Kind::CoreLoad);
        EXPECT_EQ(c.slot, 7u);
        EXPECT_EQ(line, 0x100u);
        EXPECT_EQ(at, 77u);
        ++fired;
    });
    m.addWaiter(0x100, Continuation::coreLoad(0, 7));
    m.complete(0x100, 77);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(m.outstanding(0x100));
}

TEST(Mshr, MultipleWaitersAllFire)
{
    MshrFile m(4);
    m.allocate(0x40);
    int fired = 0;
    m.setDispatcher(
        [&](const Continuation &, Addr, Cycle) { ++fired; });
    for (unsigned i = 0; i < 5; ++i)
        m.addWaiter(0x40, Continuation::coreLoad(0, i));
    m.complete(0x40, 1);
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(m.coalesced(), 5u);
}

TEST(Mshr, CapacityEnforced)
{
    MshrFile m(2);
    m.allocate(0x0);
    EXPECT_FALSE(m.full());
    m.allocate(0x40);
    EXPECT_TRUE(m.full());
    m.complete(0x0, 1);
    EXPECT_FALSE(m.full());
}

TEST(Mshr, AllocationsCounted)
{
    MshrFile m(8);
    m.allocate(0);
    m.allocate(64);
    m.complete(0, 1);
    m.allocate(128);
    EXPECT_EQ(m.allocations(), 3u);
    EXPECT_EQ(m.size(), 2u);
}

TEST(MshrDeathTest, DoubleAllocatePanics)
{
    MshrFile m(4);
    m.allocate(0x100);
    EXPECT_DEATH(m.allocate(0x100), "already outstanding");
}

TEST(MshrDeathTest, CompleteWithoutEntryPanics)
{
    MshrFile m(4);
    EXPECT_DEATH(m.complete(0x100, 0), "without outstanding");
}
