/**
 * @file
 * Unit and property tests for the set-associative cache.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cache/cache.hh"
#include "common/random.hh"

using namespace dasdram;

TEST(Cache, MissThenInsertThenHit)
{
    Cache c({1024, 2, 64}, "c");
    EXPECT_FALSE(c.access(0x100, false));
    c.insert(0x100, false);
    EXPECT_TRUE(c.access(0x100, false));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LineGranularity)
{
    Cache c({1024, 2, 64}, "c");
    c.insert(0x100, false);
    EXPECT_TRUE(c.access(0x100 + 63, false)); // same line
    EXPECT_FALSE(c.access(0x100 + 64, false)); // next line
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // 2-way, 1 set: 128 B cache with 64 B lines.
    Cache c({128, 2, 64}, "c");
    c.insert(0 * 64, false);
    c.insert(1 * 64, false);
    c.access(0 * 64, false); // touch line 0 → line 1 is LRU
    Cache::Eviction ev = c.insert(2 * 64, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.line, 1u * 64);
    EXPECT_TRUE(c.probe(0 * 64));
    EXPECT_FALSE(c.probe(1 * 64));
}

TEST(Cache, DirtyTrackingThroughWriteAccess)
{
    Cache c({128, 2, 64}, "c");
    c.insert(0, false);
    c.insert(64, false);
    c.access(0, true); // dirties and refreshes line 0 → 64 is LRU
    Cache::Eviction ev = c.insert(128, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.line, 64u);
    EXPECT_FALSE(ev.dirty);
    // Now {0 (dirty, older), 128}: next insert evicts the dirty line.
    ev = c.insert(192, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.line, 0u);
    EXPECT_TRUE(ev.dirty);
}

TEST(Cache, InsertExistingRefreshesWithoutEviction)
{
    Cache c({128, 2, 64}, "c");
    c.insert(0, false);
    c.insert(64, false);
    Cache::Eviction ev = c.insert(0, true); // refresh + dirty
    EXPECT_FALSE(ev.valid);
    ev = c.insert(128, false); // evicts 64, not 0
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.line, 64u);
}

TEST(Cache, InvalidateReportsDirtiness)
{
    Cache c({1024, 2, 64}, "c");
    c.insert(0x40, true);
    EXPECT_TRUE(c.invalidate(0x40));
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_FALSE(c.invalidate(0x40)); // already gone
}

TEST(Cache, OccupancyGrowsToFull)
{
    Cache c({1024, 4, 64}, "c"); // 16 lines
    EXPECT_DOUBLE_EQ(c.occupancy(), 0.0);
    for (Addr a = 0; a < 1024; a += 64)
        c.insert(a, false);
    EXPECT_DOUBLE_EQ(c.occupancy(), 1.0);
}

class CacheGeometrySweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned>>
{
};

TEST_P(CacheGeometrySweep, WorkingSetSmallerThanCacheAlwaysHitsAfterWarm)
{
    auto [size, assoc] = GetParam();
    Cache c({size, assoc, 64}, "c");
    std::uint64_t lines = size / 64;
    // Warm exactly the cache capacity with a stride-1 set.
    for (std::uint64_t i = 0; i < lines; ++i)
        c.insert(i * 64, false);
    for (std::uint64_t i = 0; i < lines; ++i)
        EXPECT_TRUE(c.access(i * 64, false)) << "line " << i;
}

TEST_P(CacheGeometrySweep, CapacityNeverExceeded)
{
    auto [size, assoc] = GetParam();
    Cache c({size, assoc, 64}, "c");
    for (std::uint64_t i = 0; i < 4 * size / 64; ++i)
        c.insert(i * 64, false);
    EXPECT_DOUBLE_EQ(c.occupancy(), 1.0);
    // Evictions = inserts - capacity.
    EXPECT_EQ(c.evictions(), 4 * size / 64 - size / 64);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometrySweep,
    ::testing::Values(std::make_tuple(4 * KiB, 1u),
                      std::make_tuple(4 * KiB, 4u),
                      std::make_tuple(64 * KiB, 8u),
                      std::make_tuple(256 * KiB, 16u)));

TEST(Cache, RandomReplacementStillBoundsCapacity)
{
    Cache c({4 * KiB, 4, 64, CacheRepl::Random}, "c");
    for (std::uint64_t i = 0; i < 500; ++i)
        c.insert(i * 64, false);
    EXPECT_DOUBLE_EQ(c.occupancy(), 1.0);
}

TEST(Cache, MatchesReferenceLruModel)
{
    // Property: under random traffic, Cache agrees exactly with a
    // straightforward list-based LRU reference model.
    const std::uint64_t size = 2 * KiB, assoc = 4, line = 64;
    const std::uint64_t sets = size / (line * assoc);
    Cache c({size, static_cast<unsigned>(assoc), line}, "dut");
    // reference[set] = lines most-recent-first
    std::vector<std::vector<Addr>> ref(sets);
    Rng rng(99);
    for (int i = 0; i < 20000; ++i) {
        Addr a = rng.nextBelow(4 * size / line) * line;
        std::uint64_t set = (a / line) % sets;
        auto &v = ref[set];
        auto it = std::find(v.begin(), v.end(), a);
        bool ref_hit = it != v.end();
        bool dut_hit = c.access(a, false);
        ASSERT_EQ(dut_hit, ref_hit) << "access " << i;
        if (ref_hit) {
            v.erase(it);
            v.insert(v.begin(), a);
        } else {
            // Fill like the hierarchy would.
            c.insert(a, false);
            v.insert(v.begin(), a);
            if (v.size() > assoc)
                v.pop_back();
        }
    }
}
